#include "meter/metermsgs.h"

#include <cassert>

#include "meter/meterflags.h"
#include "util/strings.h"

namespace dpm::meter {

namespace {

struct FlagName {
  const char* name;
  Flags flag;
};

constexpr FlagName kFlagNames[] = {
    {"send", M_SEND},       {"receivecall", M_RECEIVECALL},
    {"receive", M_RECEIVE}, {"socket", M_SOCKET},
    {"dup", M_DUP},         {"destsocket", M_DESTSOCKET},
    {"fork", M_FORK},       {"accept", M_ACCEPT},
    {"connect", M_CONNECT}, {"termproc", M_TERMPROC},
    {"immediate", M_IMMEDIATE},
};

}  // namespace

std::optional<Flags> flag_by_name(std::string_view name) {
  const std::string lower = util::to_lower(name);
  if (lower == "all") return M_ALL;
  for (const auto& fn : kFlagNames) {
    if (lower == fn.name) return fn.flag;
  }
  return std::nullopt;
}

std::string flags_to_string(Flags flags) {
  std::string out;
  for (const auto& fn : kFlagNames) {
    if (flags & fn.flag) {
      if (!out.empty()) out += ' ';
      out += fn.name;
    }
  }
  if (out.empty()) out = "none";
  return out;
}

const std::vector<std::string>& flag_names() {
  static const std::vector<std::string> names = [] {
    std::vector<std::string> v;
    for (const auto& fn : kFlagNames) v.emplace_back(fn.name);
    v.emplace_back("all");
    return v;
  }();
  return names;
}

namespace {

/// The single source of truth for event-type names: both event_name and
/// event_by_name derive from it, so adding an event type cannot leave the
/// reverse lookup silently truncated.
struct EventTypeName {
  EventType type;
  const char* name;
};

constexpr EventTypeName kEventTypeNames[] = {
    {EventType::send, "send"},         {EventType::recv, "recv"},
    {EventType::recvcall, "recvcall"}, {EventType::sockcrt, "sockcrt"},
    {EventType::dup, "dup"},           {EventType::destsock, "destsock"},
    {EventType::fork, "fork"},         {EventType::accept, "accept"},
    {EventType::connect, "connect"},   {EventType::termproc, "termproc"},
};

}  // namespace

std::string_view event_name(EventType t) {
  for (const auto& e : kEventTypeNames) {
    if (e.type == t) return e.name;
  }
  return "unknown";
}

std::optional<EventType> event_by_name(std::string_view name) {
  const std::string lower = util::to_lower(name);
  for (const auto& e : kEventTypeNames) {
    if (lower == e.name) return e.type;
  }
  return std::nullopt;
}

EventType MeterMsg::type() const {
  return static_cast<EventType>(
      std::visit([](const auto& b) -> std::uint32_t {
        using B = std::decay_t<decltype(b)>;
        if constexpr (std::is_same_v<B, MeterSend>) return 1;
        else if constexpr (std::is_same_v<B, MeterRecv>) return 2;
        else if constexpr (std::is_same_v<B, MeterRecvCall>) return 3;
        else if constexpr (std::is_same_v<B, MeterSockCrt>) return 4;
        else if constexpr (std::is_same_v<B, MeterDup>) return 5;
        else if constexpr (std::is_same_v<B, MeterDestSock>) return 6;
        else if constexpr (std::is_same_v<B, MeterFork>) return 7;
        else if constexpr (std::is_same_v<B, MeterAccept>) return 8;
        else if constexpr (std::is_same_v<B, MeterConnect>) return 9;
        else return 10;
      }, body));
}

Pid MeterMsg::pid() const {
  return std::visit([](const auto& b) { return b.pid; }, body);
}

namespace {

void write_header(util::BinaryWriter& w, const MeterHeader& h, EventType t) {
  w.u32(0);  // size back-patched
  w.u16(h.machine);
  w.i64(h.cpu_time);
  w.i64(h.proc_time);
  w.u32(static_cast<std::uint32_t>(t));
}

struct BodyWriter {
  util::BinaryWriter& w;

  void common(Pid pid, std::uint32_t pc) {
    w.i32(pid);
    w.u32(pc);
  }
  void operator()(const MeterSend& b) {
    common(b.pid, b.pc);
    w.u64(b.sock);
    w.u32(b.msg_length);
    w.lstring(b.dest_name);
  }
  void operator()(const MeterRecv& b) {
    common(b.pid, b.pc);
    w.u64(b.sock);
    w.u32(b.msg_length);
    w.lstring(b.source_name);
  }
  void operator()(const MeterRecvCall& b) {
    common(b.pid, b.pc);
    w.u64(b.sock);
  }
  void operator()(const MeterSockCrt& b) {
    common(b.pid, b.pc);
    w.u64(b.sock);
    w.u32(b.domain);
    w.u32(b.type);
    w.u32(b.protocol);
  }
  void operator()(const MeterDup& b) {
    common(b.pid, b.pc);
    w.u64(b.sock);
    w.u64(b.new_sock);
  }
  void operator()(const MeterDestSock& b) {
    common(b.pid, b.pc);
    w.u64(b.sock);
  }
  void operator()(const MeterFork& b) {
    common(b.pid, b.pc);
    w.i32(b.new_pid);
  }
  // Accept/connect carry two names; as in the paper's structs both length
  // fields precede the name bytes so description files can use fixed
  // offsets for the lengths.
  void operator()(const MeterAccept& b) {
    common(b.pid, b.pc);
    w.u64(b.sock);
    w.u64(b.new_sock);
    w.u32(static_cast<std::uint32_t>(b.sock_name.size()));
    w.u32(static_cast<std::uint32_t>(b.peer_name.size()));
    w.raw(reinterpret_cast<const std::uint8_t*>(b.sock_name.data()),
          b.sock_name.size());
    w.raw(reinterpret_cast<const std::uint8_t*>(b.peer_name.data()),
          b.peer_name.size());
  }
  void operator()(const MeterConnect& b) {
    common(b.pid, b.pc);
    w.u64(b.sock);
    w.u32(static_cast<std::uint32_t>(b.sock_name.size()));
    w.u32(static_cast<std::uint32_t>(b.peer_name.size()));
    w.raw(reinterpret_cast<const std::uint8_t*>(b.sock_name.data()),
          b.sock_name.size());
    w.raw(reinterpret_cast<const std::uint8_t*>(b.peer_name.data()),
          b.peer_name.size());
  }
  void operator()(const MeterTermProc& b) {
    common(b.pid, b.pc);
    w.i32(b.status);
  }
};

}  // namespace

util::Bytes MeterMsg::serialize() const {
  util::Bytes out;
  serialize_into(out);
  return out;
}

void MeterMsg::serialize_into(util::Bytes& out) const {
  // One resize for the whole record, then a span encode into it: the
  // append-mode writer would grow `out` once per value, and this sits on
  // the per-event emit path. wire_size() is exact (property-tested), but
  // a mismatch must never corrupt the batch, so re-encode in append mode
  // if the span encode does not land exactly on the precomputed size.
  const std::size_t at = out.size();
  const std::size_t n = wire_size();
  out.resize(at + n);
  util::BinaryWriter w(out.data() + at, n);
  encode_into(w);
  if (!w.ok() || w.size() != n) {
    out.resize(at);
    util::BinaryWriter fallback(out);
    encode_into(fallback);
  }
}

void MeterMsg::encode_into(util::BinaryWriter& w) const {
  write_header(w, header, type());
  std::visit(BodyWriter{w}, body);
  w.patch_u32(0, static_cast<std::uint32_t>(w.size()));
}

namespace {

struct BodySizer {
  // pid i32 + pc u32, common to every body.
  static constexpr std::size_t kCommon = 8;

  std::size_t operator()(const MeterSend& b) const {
    return kCommon + 8 + 4 + 4 + b.dest_name.size();
  }
  std::size_t operator()(const MeterRecv& b) const {
    return kCommon + 8 + 4 + 4 + b.source_name.size();
  }
  std::size_t operator()(const MeterRecvCall&) const { return kCommon + 8; }
  std::size_t operator()(const MeterSockCrt&) const { return kCommon + 8 + 12; }
  std::size_t operator()(const MeterDup&) const { return kCommon + 16; }
  std::size_t operator()(const MeterDestSock&) const { return kCommon + 8; }
  std::size_t operator()(const MeterFork&) const { return kCommon + 4; }
  std::size_t operator()(const MeterAccept& b) const {
    return kCommon + 16 + 8 + b.sock_name.size() + b.peer_name.size();
  }
  std::size_t operator()(const MeterConnect& b) const {
    return kCommon + 8 + 8 + b.sock_name.size() + b.peer_name.size();
  }
  std::size_t operator()(const MeterTermProc&) const { return kCommon + 4; }
};

}  // namespace

std::size_t MeterMsg::wire_size() const {
  return kHeaderSize + std::visit(BodySizer{}, body);
}

namespace {

template <typename T>
bool read_common(util::BinaryReader& r, T& b) {
  auto pid = r.i32();
  auto pc = r.u32();
  if (!pid || !pc) return false;
  b.pid = *pid;
  b.pc = *pc;
  return true;
}

std::optional<MeterBody> parse_body(EventType t, util::BinaryReader& r) {
  switch (t) {
    case EventType::send: {
      MeterSend b;
      if (!read_common(r, b)) return std::nullopt;
      auto sock = r.u64();
      auto len = r.u32();
      auto name = r.lstring();
      if (!sock || !len || !name) return std::nullopt;
      b.sock = *sock;
      b.msg_length = *len;
      b.dest_name = *name;
      return MeterBody{b};
    }
    case EventType::recv: {
      MeterRecv b;
      if (!read_common(r, b)) return std::nullopt;
      auto sock = r.u64();
      auto len = r.u32();
      auto name = r.lstring();
      if (!sock || !len || !name) return std::nullopt;
      b.sock = *sock;
      b.msg_length = *len;
      b.source_name = *name;
      return MeterBody{b};
    }
    case EventType::recvcall: {
      MeterRecvCall b;
      if (!read_common(r, b)) return std::nullopt;
      auto sock = r.u64();
      if (!sock) return std::nullopt;
      b.sock = *sock;
      return MeterBody{b};
    }
    case EventType::sockcrt: {
      MeterSockCrt b;
      if (!read_common(r, b)) return std::nullopt;
      auto sock = r.u64();
      auto domain = r.u32();
      auto type = r.u32();
      auto proto = r.u32();
      if (!sock || !domain || !type || !proto) return std::nullopt;
      b.sock = *sock;
      b.domain = *domain;
      b.type = *type;
      b.protocol = *proto;
      return MeterBody{b};
    }
    case EventType::dup: {
      MeterDup b;
      if (!read_common(r, b)) return std::nullopt;
      auto sock = r.u64();
      auto ns = r.u64();
      if (!sock || !ns) return std::nullopt;
      b.sock = *sock;
      b.new_sock = *ns;
      return MeterBody{b};
    }
    case EventType::destsock: {
      MeterDestSock b;
      if (!read_common(r, b)) return std::nullopt;
      auto sock = r.u64();
      if (!sock) return std::nullopt;
      b.sock = *sock;
      return MeterBody{b};
    }
    case EventType::fork: {
      MeterFork b;
      if (!read_common(r, b)) return std::nullopt;
      auto np = r.i32();
      if (!np) return std::nullopt;
      b.new_pid = *np;
      return MeterBody{b};
    }
    case EventType::accept: {
      MeterAccept b;
      if (!read_common(r, b)) return std::nullopt;
      auto sock = r.u64();
      auto ns = r.u64();
      auto snl = r.u32();
      auto pnl = r.u32();
      if (!sock || !ns || !snl || !pnl) return std::nullopt;
      auto sn = r.fixed_string(*snl);
      auto pn = r.fixed_string(*pnl);
      if (!sn || !pn) return std::nullopt;
      b.sock = *sock;
      b.new_sock = *ns;
      b.sock_name = *sn;
      b.peer_name = *pn;
      return MeterBody{b};
    }
    case EventType::connect: {
      MeterConnect b;
      if (!read_common(r, b)) return std::nullopt;
      auto sock = r.u64();
      auto snl = r.u32();
      auto pnl = r.u32();
      if (!sock || !snl || !pnl) return std::nullopt;
      auto sn = r.fixed_string(*snl);
      auto pn = r.fixed_string(*pnl);
      if (!sn || !pn) return std::nullopt;
      b.sock = *sock;
      b.sock_name = *sn;
      b.peer_name = *pn;
      return MeterBody{b};
    }
    case EventType::termproc: {
      MeterTermProc b;
      if (!read_common(r, b)) return std::nullopt;
      auto st = r.i32();
      if (!st) return std::nullopt;
      b.status = *st;
      return MeterBody{b};
    }
  }
  return std::nullopt;
}

}  // namespace

std::optional<MeterMsg> MeterMsg::parse(const util::Bytes& wire) {
  std::size_t pos = 0;
  auto msg = parse_stream(wire, pos);
  if (!msg || pos != wire.size()) return std::nullopt;
  return msg;
}

std::optional<MeterMsg> MeterMsg::parse_stream(const util::Bytes& wire,
                                               std::size_t& pos) {
  if (wire.size() - pos < kHeaderSize) return std::nullopt;
  util::BinaryReader r(wire.data() + pos, wire.size() - pos);
  MeterMsg msg;
  auto size = r.u32();
  auto machine = r.u16();
  auto cpu = r.i64();
  auto proc = r.i64();
  auto type = r.u32();
  if (!size || !machine || !cpu || !proc || !type) return std::nullopt;
  if (*size < kHeaderSize || wire.size() - pos < *size) return std::nullopt;
  if (*type < 1 || *type > 10) return std::nullopt;
  msg.header.size = *size;
  msg.header.machine = *machine;
  msg.header.cpu_time = *cpu;
  msg.header.proc_time = *proc;
  msg.header.trace_type = static_cast<EventType>(*type);
  util::BinaryReader body(wire.data() + pos + kHeaderSize, *size - kHeaderSize);
  auto parsed = parse_body(msg.header.trace_type, body);
  if (!parsed) return std::nullopt;
  msg.body = std::move(*parsed);
  pos += *size;
  return msg;
}

namespace {

struct BodyPrinter {
  std::string operator()(const MeterSend& b) const {
    return util::strprintf("pid=%d sock=%llu len=%u dest=%s", b.pid,
                           static_cast<unsigned long long>(b.sock),
                           b.msg_length,
                           b.dest_name.empty() ? "?" : b.dest_name.c_str());
  }
  std::string operator()(const MeterRecv& b) const {
    return util::strprintf("pid=%d sock=%llu len=%u src=%s", b.pid,
                           static_cast<unsigned long long>(b.sock),
                           b.msg_length,
                           b.source_name.empty() ? "?" : b.source_name.c_str());
  }
  std::string operator()(const MeterRecvCall& b) const {
    return util::strprintf("pid=%d sock=%llu", b.pid,
                           static_cast<unsigned long long>(b.sock));
  }
  std::string operator()(const MeterSockCrt& b) const {
    return util::strprintf("pid=%d sock=%llu domain=%u type=%u", b.pid,
                           static_cast<unsigned long long>(b.sock), b.domain,
                           b.type);
  }
  std::string operator()(const MeterDup& b) const {
    return util::strprintf("pid=%d sock=%llu new=%llu", b.pid,
                           static_cast<unsigned long long>(b.sock),
                           static_cast<unsigned long long>(b.new_sock));
  }
  std::string operator()(const MeterDestSock& b) const {
    return util::strprintf("pid=%d sock=%llu", b.pid,
                           static_cast<unsigned long long>(b.sock));
  }
  std::string operator()(const MeterFork& b) const {
    return util::strprintf("pid=%d child=%d", b.pid, b.new_pid);
  }
  std::string operator()(const MeterAccept& b) const {
    return util::strprintf("pid=%d sock=%llu new=%llu name=%s peer=%s", b.pid,
                           static_cast<unsigned long long>(b.sock),
                           static_cast<unsigned long long>(b.new_sock),
                           b.sock_name.c_str(), b.peer_name.c_str());
  }
  std::string operator()(const MeterConnect& b) const {
    return util::strprintf("pid=%d sock=%llu name=%s peer=%s", b.pid,
                           static_cast<unsigned long long>(b.sock),
                           b.sock_name.c_str(), b.peer_name.c_str());
  }
  std::string operator()(const MeterTermProc& b) const {
    return util::strprintf("pid=%d status=%d", b.pid, b.status);
  }
};

}  // namespace

std::string MeterMsg::pretty() const {
  return util::strprintf(
             "%-8s machine=%u cpuTime=%lld procTime=%lld ",
             std::string(event_name(type())).c_str(), header.machine,
             static_cast<long long>(header.cpu_time),
             static_cast<long long>(header.proc_time)) +
         std::visit(BodyPrinter{}, body);
}

MeterMsg make_msg(EventType t) {
  MeterMsg m;
  switch (t) {
    case EventType::send: m.body = MeterSend{}; break;
    case EventType::recv: m.body = MeterRecv{}; break;
    case EventType::recvcall: m.body = MeterRecvCall{}; break;
    case EventType::sockcrt: m.body = MeterSockCrt{}; break;
    case EventType::dup: m.body = MeterDup{}; break;
    case EventType::destsock: m.body = MeterDestSock{}; break;
    case EventType::fork: m.body = MeterFork{}; break;
    case EventType::accept: m.body = MeterAccept{}; break;
    case EventType::connect: m.body = MeterConnect{}; break;
    case EventType::termproc: m.body = MeterTermProc{}; break;
  }
  m.header.trace_type = t;
  return m;
}

}  // namespace dpm::meter
