#include "sim/event_queue.h"

#include <cassert>
#include <utility>

namespace dpm::sim {

EventId EventQueue::schedule(util::TimePoint at, Fn fn) {
  const EventId id = next_seq_++;
  heap_.push(Event{at, id, std::move(fn)});
  return id;
}

void EventQueue::cancel(EventId id) { cancelled_.insert(id); }

void EventQueue::drop_cancelled() const {
  while (!heap_.empty() && cancelled_.erase(heap_.top().seq) > 0) {
    heap_.pop();
  }
}

util::TimePoint EventQueue::next_time() const {
  drop_cancelled();
  assert(!heap_.empty());
  return heap_.top().at;
}

EventQueue::Fn EventQueue::pop() {
  drop_cancelled();
  assert(!heap_.empty());
  // priority_queue::top() is const; the event is moved out via const_cast,
  // which is safe because the element is popped immediately after.
  Fn fn = std::move(const_cast<Event&>(heap_.top()).fn);
  heap_.pop();
  return fn;
}

}  // namespace dpm::sim
