file(REMOVE_RECURSE
  "CMakeFiles/dpm_control.dir/control/controller.cc.o"
  "CMakeFiles/dpm_control.dir/control/controller.cc.o.d"
  "CMakeFiles/dpm_control.dir/control/job.cc.o"
  "CMakeFiles/dpm_control.dir/control/job.cc.o.d"
  "CMakeFiles/dpm_control.dir/control/session.cc.o"
  "CMakeFiles/dpm_control.dir/control/session.cc.o.d"
  "libdpm_control.a"
  "libdpm_control.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dpm_control.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
