file(REMOVE_RECURSE
  "CMakeFiles/kernel_test.dir/kernel/cpu_test.cc.o"
  "CMakeFiles/kernel_test.dir/kernel/cpu_test.cc.o.d"
  "CMakeFiles/kernel_test.dir/kernel/file_test.cc.o"
  "CMakeFiles/kernel_test.dir/kernel/file_test.cc.o.d"
  "CMakeFiles/kernel_test.dir/kernel/limits_test.cc.o"
  "CMakeFiles/kernel_test.dir/kernel/limits_test.cc.o.d"
  "CMakeFiles/kernel_test.dir/kernel/process_test.cc.o"
  "CMakeFiles/kernel_test.dir/kernel/process_test.cc.o.d"
  "CMakeFiles/kernel_test.dir/kernel/select_test.cc.o"
  "CMakeFiles/kernel_test.dir/kernel/select_test.cc.o.d"
  "CMakeFiles/kernel_test.dir/kernel/setmeter_test.cc.o"
  "CMakeFiles/kernel_test.dir/kernel/setmeter_test.cc.o.d"
  "CMakeFiles/kernel_test.dir/kernel/socket_test.cc.o"
  "CMakeFiles/kernel_test.dir/kernel/socket_test.cc.o.d"
  "CMakeFiles/kernel_test.dir/kernel/variants_test.cc.o"
  "CMakeFiles/kernel_test.dir/kernel/variants_test.cc.o.d"
  "kernel_test"
  "kernel_test.pdb"
  "kernel_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/kernel_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
