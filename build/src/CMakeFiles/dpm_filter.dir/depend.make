# Empty dependencies file for dpm_filter.
# This may be replaced when dependencies are built.
