#include "net/address.h"

#include <gtest/gtest.h>

namespace dpm::net {
namespace {

TEST(SockAddr, InetTextIsPaperStyleNumber) {
  // Fig 3.3 matches destinations numerically ("destName=228320140"):
  // internet names render as host*65536 + port.
  SockAddr a = SockAddr::inet(0, 3484, 31500);
  EXPECT_EQ(a.text(), "228358924");  // 3484*65536 + 31500
  EXPECT_EQ(a.numeric().value(), 228358924);
}

TEST(SockAddr, UnixTextIsPath) {
  SockAddr a = SockAddr::unix_name("/tmp/sock");
  EXPECT_EQ(a.text(), "/tmp/sock");
  EXPECT_FALSE(a.numeric().has_value());
}

TEST(SockAddr, InternalNamesAreUnique) {
  SockAddr a = SockAddr::internal(1);
  SockAddr b = SockAddr::internal(2);
  EXPECT_NE(a.text(), b.text());
  EXPECT_EQ(a.text(), "#1");
}

TEST(SockAddr, ComparisonAndUnspec) {
  SockAddr a = SockAddr::inet(0, 1, 2);
  SockAddr b = SockAddr::inet(0, 1, 2);
  SockAddr c = SockAddr::inet(0, 1, 3);
  EXPECT_EQ(a, b);
  EXPECT_NE(a, c);
  EXPECT_TRUE(SockAddr{}.is_unspec());
  EXPECT_FALSE(a.is_unspec());
}

TEST(SockAddr, DebugRendering) {
  EXPECT_EQ(SockAddr::inet(2, 7, 99).debug(), "inet(net2,7:99)");
  EXPECT_EQ(SockAddr::unix_name("/x").debug(), "unix(/x)");
}

}  // namespace
}  // namespace dpm::net
