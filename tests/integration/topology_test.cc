// F3.1 / Figs 4.3-4.6 topology: controller on yellow, filter on blue,
// processes on red and green, daemons everywhere — plus the §3.5.4
// internetwork naming scenario with a multi-network host.
#include <gtest/gtest.h>

#include "analysis/comm_stats.h"
#include "apps/apps.h"
#include "control/session.h"
#include "daemon/protocol.h"
#include "testing.h"

namespace dpm {
namespace {

TEST(TopologyTest, FourMachineMeteringSession) {
  kernel::World world(dpm::testing::quick_config(3));
  auto machines =
      dpm::testing::add_machines(world, {"yellow", "red", "green", "blue"});
  control::install_monitor(world);
  apps::install_everywhere(world);
  control::spawn_meterdaemons(world);
  control::MonitorSession session(
      world, control::MonitorSession::Options{.host = "yellow", .uid = 100});
  world.run();
  (void)session.drain_output();

  // Filter on blue; computation spread over red and green (Fig 4.5).
  (void)session.command("filter f1 blue");
  (void)session.command("newjob foo");
  (void)session.command("addprocess foo red pingpong_server 4840 4");
  (void)session.command("addprocess foo green pingpong_client red 4840 4 32");
  (void)session.command("setflags foo all");
  std::string out = session.command("startjob foo");
  EXPECT_NE(out.find("terminated: reason: normal"), std::string::npos) << out;
  (void)session.command("removejob foo");
  (void)session.command("getlog f1 trace");

  auto text = world.machine(machines[0]).fs.read_text("trace");
  ASSERT_TRUE(text.has_value());
  analysis::Trace trace = analysis::read_trace(*text);
  analysis::CommStats stats = analysis::communication_statistics(trace);
  EXPECT_EQ(stats.per_process.size(), 2u);
  EXPECT_EQ(stats.graph.edges.size(), 2u);
}

TEST(TopologyTest, MultiNetworkHostAddressReconstruction) {
  // gateway sits on networks 0 and 1; red only on 0, blue only on 1.
  // Both reach the same listening socket on gateway through *different*
  // addresses — possible only because literal host names are resolved
  // by each sender (§3.5.4).
  kernel::World world(dpm::testing::quick_config(5));
  const auto gw = world.add_machine(
      "gateway", {net::Interface{0, 100}, net::Interface{1, 200}}, {});
  const auto red = world.add_machine("red", {net::Interface{0, 101}}, {});
  const auto blue = world.add_machine("blue", {net::Interface{1, 201}}, {});
  world.add_account_everywhere(100);

  int served = 0;
  (void)world.spawn(gw, "server", 100, [&](kernel::Sys& sys) {
    auto ls = sys.socket(kernel::SockDomain::internet,
                         kernel::SockType::stream);
    ASSERT_TRUE(sys.bind_port(*ls, 4850).ok());
    ASSERT_TRUE(sys.listen(*ls, 4).ok());
    for (int i = 0; i < 2; ++i) {
      auto conn = sys.accept(*ls);
      ASSERT_TRUE(conn.ok());
      auto data = sys.recv_exact(*conn, 4);
      ASSERT_TRUE(data.ok());
      ++served;
      (void)sys.close(*conn);
    }
  });
  auto client = [&](kernel::MachineId m) {
    (void)world.spawn(m, "client", 100, [&](kernel::Sys& sys) {
      sys.sleep(util::msec(5));
      auto addr = sys.resolve("gateway", 4850);
      ASSERT_TRUE(addr.has_value());
      auto fd = sys.socket(kernel::SockDomain::internet,
                           kernel::SockType::stream);
      ASSERT_TRUE(sys.connect(*fd, *addr).ok());
      ASSERT_TRUE(sys.send(*fd, "ping").ok());
    });
  };
  client(red);
  client(blue);
  world.run();
  EXPECT_EQ(served, 2);

  // The two clients used different addresses for the same host.
  auto from_red = world.hosts().resolve_from("red", "gateway", 4850);
  auto from_blue = world.hosts().resolve_from("blue", "gateway", 4850);
  ASSERT_TRUE(from_red.has_value());
  ASSERT_TRUE(from_blue.has_value());
  EXPECT_NE(from_red->host, from_blue->host);
}

TEST(TopologyTest, FilterDisjointFromComputationAndController) {
  // §3.4: "A filter process may execute on a machine that is disjoint
  // from the set of machines on which the processes of the computation
  // are executing." Here nothing at all runs on the filter's machine
  // except the filter and its daemon.
  kernel::World world(dpm::testing::quick_config(9));
  auto machines = dpm::testing::add_machines(world, {"yellow", "red", "blue"});
  control::install_monitor(world);
  apps::install_everywhere(world);
  control::spawn_meterdaemons(world);
  control::MonitorSession session(
      world, control::MonitorSession::Options{.host = "yellow", .uid = 100});
  world.run();
  (void)session.drain_output();

  (void)session.command("filter lonely blue");
  (void)session.command("newjob j");
  (void)session.command("addprocess j red hello solo");
  (void)session.command("setflags j all");
  (void)session.command("startjob j");
  (void)session.command("removejob j");
  (void)session.command("getlog lonely t");
  auto text = world.machine(machines[0]).fs.read_text("t");
  ASSERT_TRUE(text.has_value());
  analysis::Trace trace = analysis::read_trace(*text);
  bool saw_termproc = false;
  for (const auto& e : trace.events) {
    if (e.type == meter::EventType::termproc) saw_termproc = true;
  }
  EXPECT_TRUE(saw_termproc);
}

}  // namespace
}  // namespace dpm
