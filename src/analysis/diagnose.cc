#include "analysis/diagnose.h"

#include <algorithm>
#include <map>

#include "analysis/comm_stats.h"
#include "analysis/ordering.h"
#include "analysis/parallelism.h"
#include "util/strings.h"

namespace dpm::analysis {

bool Diagnosis::has(const std::string& category) const {
  for (const auto& f : findings) {
    if (f.category == category) return true;
  }
  return false;
}

std::string Diagnosis::render() const {
  if (findings.empty()) return "== diagnosis ==\n(nothing notable)\n";
  std::string out = "== diagnosis ==\n";
  for (const auto& f : findings) {
    const char* tag = f.severity == Severity::warning ? "WARN"
                      : f.severity == Severity::notice ? "note"
                                                       : "info";
    out += util::strprintf("[%s] %s\n", tag, f.message.c_str());
  }
  return out;
}

namespace {

/// Per-process wait accounting (recvcall -> matching receive, aligned
/// clocks), plus the peer whose messages ended the longest waits.
struct WaitProfile {
  std::int64_t window = 0;
  std::int64_t waiting = 0;
  std::map<ProcKey, std::int64_t> waited_on;  // peer -> summed wait
};

std::map<ProcKey, WaitProfile> wait_profiles(const Trace& trace,
                                             const Ordering& ordering,
                                             const ClockAlignment& clocks) {
  std::map<ProcKey, WaitProfile> out;
  struct Open {
    std::int64_t since = 0;
  };
  std::map<std::pair<ProcKey, std::uint64_t>, Open> open;
  std::map<ProcKey, std::pair<std::int64_t, std::int64_t>> window;

  for (std::size_t i = 0; i < trace.events.size(); ++i) {
    const Event& e = trace.events[i];
    const std::int64_t t = clocks.aligned(e);
    auto [wit, fresh] = window.try_emplace(e.proc(), std::make_pair(t, t));
    if (!fresh) {
      wit->second.first = std::min(wit->second.first, t);
      wit->second.second = std::max(wit->second.second, t);
    }
    if (e.type == meter::EventType::recvcall) {
      open[{e.proc(), e.sock}] = Open{t};
    } else if (e.type == meter::EventType::recv) {
      auto oit = open.find({e.proc(), e.sock});
      if (oit == open.end()) continue;
      const std::int64_t waited = std::max<std::int64_t>(0, t - oit->second.since);
      open.erase(oit);
      WaitProfile& p = out[e.proc()];
      p.waiting += waited;
      if (ordering.events[i].matched_send) {
        const Event& send = trace.events[*ordering.events[i].matched_send];
        p.waited_on[send.proc()] += waited;
      }
    }
  }
  for (auto& [key, p] : out) {
    auto wit = window.find(key);
    if (wit != window.end()) p.window = wit->second.second - wit->second.first;
  }
  return out;
}

}  // namespace

Diagnosis diagnose(const Trace& trace) {
  Diagnosis d;
  if (trace.events.empty()) return d;

  const Ordering ordering = order_events(trace);
  const ClockAlignment clocks = estimate_clock_alignment(trace, ordering);
  const CommStats stats = communication_statistics(trace);
  const ParallelismProfile par = measure_parallelism(trace);

  // ---- starved processes ----
  for (const auto& [key, p] : wait_profiles(trace, ordering, clocks)) {
    if (p.window <= 0) continue;
    const double frac = static_cast<double>(p.waiting) /
                        static_cast<double>(p.window);
    if (frac < 0.5) continue;
    std::string msg = util::strprintf(
        "%s spends %.0f%% of its window waiting for messages",
        proc_key_text(key).c_str(), 100.0 * frac);
    const auto dominant = std::max_element(
        p.waited_on.begin(), p.waited_on.end(),
        [](const auto& a, const auto& b) { return a.second < b.second; });
    if (dominant != p.waited_on.end() && dominant->second > 0) {
      msg += ", mostly on " + proc_key_text(dominant->first);
    }
    d.findings.push_back({Severity::warning, "wait", msg});
  }

  // ---- serialization ----
  if (par.processes >= 3 && par.average < 1.3) {
    d.findings.push_back(
        {Severity::warning, "serial",
         util::strprintf("average parallelism is %.2f across %zu processes: "
                         "the computation is effectively serial",
                         par.average, par.processes)});
  }

  // ---- traffic hot spot ----
  if (stats.graph.edges.size() >= 3) {
    std::uint64_t total = 0, top = 0;
    const CommEdge* top_edge = nullptr;
    for (const auto& e : stats.graph.edges) {
      total += e.bytes;
      if (e.bytes > top) {
        top = e.bytes;
        top_edge = &e;
      }
    }
    if (top_edge && total > 0 && top * 2 > total) {
      d.findings.push_back(
          {Severity::notice, "hotspot",
           util::strprintf("%s -> %s carries %.0f%% of all attributed bytes",
                           proc_key_text(top_edge->from).c_str(),
                           proc_key_text(top_edge->to).c_str(),
                           100.0 * static_cast<double>(top) /
                               static_cast<double>(total))});
    }
  }

  // ---- datagram loss ----
  {
    ConnectionMatcher matcher(trace);
    std::uint64_t dgram_sends = 0, dgram_recvs = 0;
    for (const Event& e : trace.events) {
      if (e.type == meter::EventType::send && !e.dest_name.empty() &&
          matcher.owner_of_name(e.dest_name)) {
        ++dgram_sends;
      }
      if (e.type == meter::EventType::recv && !e.source_name.empty() &&
          matcher.owner_of_name(e.source_name)) {
        ++dgram_recvs;
      }
    }
    if (dgram_sends > dgram_recvs && dgram_recvs > 0) {
      d.findings.push_back(
          {Severity::warning, "loss",
           util::strprintf("%llu of %llu attributable datagrams never "
                           "arrived (%.0f%% loss)",
                           static_cast<unsigned long long>(dgram_sends -
                                                           dgram_recvs),
                           static_cast<unsigned long long>(dgram_sends),
                           100.0 * static_cast<double>(dgram_sends - dgram_recvs) /
                               static_cast<double>(dgram_sends))});
    }
  }

  // ---- clock skew ----
  if (ordering.clock_anomalies > 0) {
    d.findings.push_back(
        {Severity::info, "clocks",
         util::strprintf("machine clocks disagree: %zu receive records are "
                         "stamped before their sends (up to %lld us) — "
                         "trust the deduced order, not the timestamps",
                         ordering.clock_anomalies,
                         static_cast<long long>(ordering.max_anomaly_us))});
  }
  return d;
}

}  // namespace dpm::analysis
