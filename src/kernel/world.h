// The World: one simulated distributed system.
//
// Owns the executive (time), the network fabric, the host table, every
// machine, the global socket registry, and the exec registry. The harness
// (tests, examples, benchmarks) builds a World, registers programs, spawns
// bootstrap processes (meterdaemons, a controller), and runs the event
// loop.
#pragma once

#include <functional>
#include <map>
#include <unordered_map>
#include <memory>
#include <string>
#include <vector>

#include "kernel/exec_registry.h"
#include "kernel/machine.h"
#include "kernel/socket.h"
#include "kernel/types.h"
#include "net/fabric.h"
#include "net/hosts.h"
#include "obs/registry.h"
#include "sim/executive.h"
#include "util/result.h"
#include "util/rng.h"

namespace dpm::net {
struct FaultPlan;
class FaultInjector;
}  // namespace dpm::net

namespace dpm::kernel {

class Sys;

/// Aggregate metering counters across all processes (experiment E1).
/// `flushes`/`bytes` count batches actually delivered to a meter
/// connection; batches lost because the process has no meter socket
/// (Appendix C) are accounted separately so loss stays visible.
///
/// This struct is a *view* over the world's metrics registry (the
/// kernel.meter_* counters) — the registry is the one accounting path;
/// World::meter_stats() materializes it on demand.
struct MeterStats {
  std::uint64_t events = 0;
  std::uint64_t flushes = 0;
  std::uint64_t bytes = 0;
  std::uint64_t dropped_batches = 0;
  std::uint64_t dropped_bytes = 0;
  /// Meter records destroyed cut short: a meter connection's receive
  /// buffer was torn down while its last record was still partial (the
  /// filter-side counterpart is FilterStats::truncated).
  std::uint64_t malformed_records = 0;
};

/// Record-granular conservation of meter events: every record a process
/// ever emitted is in exactly one bucket, so at any quiescent point
///   emitted == consumed + dropped + lost + stranded + malformed
///              + pending + buffered
/// holds exactly — the chaos invariant "records emitted = records logged
/// + accounted drops". World::meter_conservation() materializes it.
struct MeterConservation {
  std::uint64_t emitted = 0;    // kernel.meter_events
  std::uint64_t consumed = 0;   // read out of a meter conn by its filter
  std::uint64_t dropped = 0;    // flushed with no usable meter socket
  std::uint64_t lost = 0;       // sent, but the peer was gone at delivery
  std::uint64_t stranded = 0;   // complete frames in a torn-down rbuf
  std::uint64_t malformed = 0;  // frames cut short by teardown
  std::uint64_t pending = 0;    // buffered in live processes, unflushed
  std::uint64_t buffered = 0;   // frames waiting in live meter-conn rbufs

  std::uint64_t accounted() const {
    return consumed + dropped + lost + stranded + malformed + pending +
           buffered;
  }
  bool balanced() const { return emitted == accounted(); }
};

/// Tier-1 conservation: every record a local filter or aggregator handed
/// to meter_forward() is in exactly one bucket, so at any quiescent point
///   forwarded == consumed + lost + overflow + stranded + malformed
///                + buffered
/// holds exactly. Self-contained per hop: a record crossing k fan-in edges
/// adds k to `forwarded` and k terminal/buffered entries, so the ledger
/// balances for any tree depth. World::fanin_conservation() materializes
/// it.
struct FanInConservation {
  std::uint64_t forwarded = 0;  // fanin.forwarded_records
  std::uint64_t consumed = 0;   // read out of a tier-1 conn upstream
  std::uint64_t lost = 0;       // sender or peer dead at send/delivery
  std::uint64_t overflow = 0;   // dropped at delivery, receiver queue full
  std::uint64_t stranded = 0;   // complete frames in a torn-down rbuf
  std::uint64_t malformed = 0;  // frames cut short by teardown
  std::uint64_t buffered = 0;   // frames waiting in live tier-1 rbufs

  std::uint64_t accounted() const {
    return consumed + lost + overflow + stranded + malformed + buffered;
  }
  bool balanced() const { return forwarded == accounted(); }
};

/// Options for World::spawn / World::spawn_file.
struct SpawnOpts {
  bool suspended = false;  // park at the stop gate before the first insn
  Pid parent = 0;
  std::vector<std::string> args;
  Descriptor stdin_fd = Descriptor::null_dev();
  Descriptor stdout_fd = Descriptor::null_dev();
  Descriptor stderr_fd = Descriptor::null_dev();
};

class World {
 public:
  explicit World(WorldConfig cfg = {});
  ~World();

  World(const World&) = delete;
  World& operator=(const World&) = delete;

  // ---- construction ----

  /// Adds a machine with explicit interfaces and clock model.
  MachineId add_machine(const std::string& name,
                        std::vector<net::Interface> interfaces,
                        sim::MachineClock::Config clock = {});

  /// Convenience: one interface on network 0, address auto-assigned,
  /// mild pseudo-random clock skew derived from the world seed.
  MachineId add_machine(const std::string& name);

  /// Grants `uid` an account on the machine (§3.5.5).
  void add_account(MachineId m, Uid uid);
  void add_account_everywhere(Uid uid);

  Machine& machine(MachineId id);
  const Machine& machine(MachineId id) const;
  Machine* machine_by_name(const std::string& name);
  std::vector<MachineId> machines() const;

  sim::Executive& exec() { return exec_; }
  net::Fabric& fabric() { return fabric_; }
  net::HostTable& hosts() { return hosts_; }
  ExecRegistry& programs() { return programs_; }
  const WorldConfig& config() const { return cfg_; }
  WorldConfig& mutable_config() { return cfg_; }
  util::Rng& rng() { return rng_; }

  // ---- process creation ----

  /// Spawns a process running `main` directly (harness bootstrap).
  util::SysResult<Pid> spawn(MachineId m, const std::string& proc_name,
                             Uid uid, ProcessMain main, SpawnOpts opts = {});

  /// Spawns from an executable file (the daemon's create path): the file
  /// must exist on the machine and name a registered program.
  util::SysResult<Pid> spawn_file(MachineId m, const std::string& path,
                                  Uid uid, std::vector<std::string> args,
                                  SpawnOpts opts = {});

  Process* find_process(MachineId m, Pid pid);

  // ---- process control (what the daemon's signals do) ----
  util::SysResult<void> proc_stop(MachineId m, Pid pid, Uid caller);
  util::SysResult<void> proc_continue(MachineId m, Pid pid, Uid caller);
  util::SysResult<void> proc_kill(MachineId m, Pid pid, Uid caller);

  // ---- fault injection (net/faults.h driven through the kernel) ----
  /// Builds a FaultInjector against this world's fabric, wires the
  /// crash/restart/kill/reset hooks and host-name resolution, and arms it.
  /// Call after the machines exist. No-op for an empty plan; the fault
  /// paths stay zero-cost until the first event fires.
  void install_faults(const net::FaultPlan& plan);

  /// Machine failure: marks the machine down and kills every process on
  /// it. The kill unwind runs the normal exit path, so pending meter
  /// batches are flushed — the fabric carries whatever it still can.
  /// SYNs and datagrams addressed to a down machine are silently lost.
  void crash_machine(MachineId id);
  /// Brings a crashed machine back up and respawns its boot programs.
  void restart_machine(MachineId id);
  /// Registers a program respawned whenever machine `m` restarts (the
  /// session layer registers the meterdaemon here).
  void add_boot_program(MachineId m, std::function<void(World&)> fn);
  /// Abruptly closes every stream connection spanning machines a and b
  /// (both endpoints; readers see EOF, meter conns degrade at next flush).
  /// Returns the number of connections reset.
  std::size_t reset_streams_between(MachineId a, MachineId b);

  // ---- sockets (kernel-internal; syscalls go through Sys) ----
  SocketId create_socket(MachineId m, SockDomain domain, SockType type);
  Socket* find_socket(SocketId id);
  Socket& socket(SocketId id);
  void socket_ref(SocketId id);
  void socket_unref(SocketId id);

  /// Kernel-side non-blocking stream send (meter flush path): enqueues the
  /// bytes toward the peer regardless of window, no meter hooks.
  /// `meter_msgs` is the record count of a meter batch — records that
  /// cannot be delivered (dead socket at send or at delivery time) are
  /// then booked as kernel.meter_lost_records, keeping conservation exact.
  void kernel_stream_send(SocketId from, util::Bytes data,
                          std::uint32_t meter_msgs = 0);

  /// Ring transport doorbell: sends a one-byte wakeup packet from the
  /// producer endpoint toward the consumer so its parked readers re-check
  /// the shared ring. Droppable unless `reliable` (flush/termination), so
  /// the fault fabric can drop or spike the signalling edge without ever
  /// touching ring data.
  void kernel_ring_wakeup(SocketId from, bool reliable);

  /// Fan-in tier send (Sys::meter_forward): ships a frame-aligned batch of
  /// `records` meter records up a tier-1 edge, bypassing the stream window.
  /// Every record is booked `fanin.forwarded_records` here and lands in
  /// exactly one terminal bucket: lost (dead endpoint at send or delivery),
  /// overflow (receiver rbuf at fanin_queue_bytes — whole batch dropped),
  /// or the receiver's rbuf (buffered, later consumed/stranded/malformed).
  /// Returns false when the edge was already dead at send time, so the
  /// caller can try to re-establish it.
  bool kernel_fanin_forward(SocketId from, util::Bytes data,
                            std::uint32_t records);

  /// Closes one endpoint: marks closed, tells the peer (EOF after data).
  void close_stream(Socket& s);

  // ---- simulated rcp (§3.5.3): copy a file between machines ----
  /// Kernel-level copy with access checks; charged latency is the caller's
  /// problem (Sys::rcp charges it).
  util::SysResult<std::size_t> copy_file(MachineId src_m, const std::string& src,
                                         MachineId dst_m, const std::string& dst,
                                         Uid uid);

  // ---- running ----
  void run() { exec_.run(); }
  void run_until(util::TimePoint t) { exec_.run_until(t); }
  void run_for(util::Duration d) { exec_.run_until(exec_.now() + d); }
  util::TimePoint now() const { return exec_.now(); }

  // ---- observability ----
  /// The world's unified metrics registry (timestamps in sim time; the
  /// executive's clock is installed at construction). All subsystem stats
  /// structs are views over it.
  obs::Registry& obs() { return obs_; }
  const obs::Registry& obs() const { return obs_; }

  /// One JSONL snapshot of every instrument plus the span ring (see
  /// obs/snapshot.h for the schema).
  std::string obs_snapshot() const { return obs_.snapshot_jsonl(); }

  /// Appends a snapshot to `*sink` every `period` of sim time, starting
  /// one period from now. The timer keeps the event queue non-empty, so
  /// drive the world with run_until/run_for (run() would never return)
  /// and call stop_obs_snapshots() when done.
  void start_obs_snapshots(util::Duration period, std::string* sink);
  void stop_obs_snapshots() { ++obs_timer_gen_; }

  // ---- services -----------------------------------------------------------
  /// A type-erased slot for harness objects that higher layers hang on the
  /// world (the kernel cannot name their types without inverting the layer
  /// order — e.g. the filter layer's live record sink, filter_program.h).
  /// An empty pointer clears the slot. Layer-owned typed accessors wrap
  /// these; nothing in the kernel interprets the values.
  void set_service(const std::string& name, std::shared_ptr<void> service);
  std::shared_ptr<void> service(const std::string& name) const;

  // ---- experiment hooks ----
  MeterStats meter_stats() const;
  /// The record-conservation ledger (walks live meter sockets and process
  /// pending buffers for the in-flight terms). Tier-0 only: fan-in edges
  /// keep their own ledger (fanin_conservation()).
  MeterConservation meter_conservation() const;
  /// The fan-in tier's ledger (walks live tier-1 conns for `buffered`).
  FanInConservation fanin_conservation() const;

  /// Called by the exit path; the harness may watch process completion.
  using ExitListener = std::function<void(MachineId, Pid, int status, bool killed)>;
  void add_exit_listener(ExitListener fn) { exit_listeners_.push_back(std::move(fn)); }

  /// Live (alive, not dead) process count across all machines.
  std::size_t live_processes() const;

  /// Sound bound on how far apart any two machines' clock readings of the
  /// same instant can be, up to the current sim time: the sum of the two
  /// largest per-machine error bounds (offset + drift over the horizon +
  /// one tick each, sim::MachineClock::error_bound_us). This is the ε the
  /// online predicate detector should assume for this world.
  std::int64_t clock_skew_bound_us() const;

 private:
  friend class Sys;
  friend void meter_emit(World&, Process&, struct MeterEventDraft&&);
  friend void meter_flush(World&, Process&);
  friend void meter_degrade(World&, Process&);

  void finalize_exit(std::shared_ptr<Process> p, int status, bool was_killed);
  void push_child_change(Machine& m, Pid parent, ChildChange change);
  void destroy_socket(SocketId id);
  void release_descriptor(Descriptor& d);

  /// Advances a meter conn's frame cursor over `n` bytes the reader just
  /// consumed; counts kernel.meter_records_consumed at frame boundaries.
  void meter_consume(Socket& s, const std::uint8_t* data, std::size_t n);

  /// Delivery of one stream chunk into `to` (fabric callback). `accounted`
  /// marks chunks counted against the receive window by the sender.
  void deliver_stream(SocketId to, util::Bytes data, bool accounted);
  void deliver_eof(SocketId to);

  WorldConfig cfg_;
  sim::Executive exec_;
  obs::Registry obs_;  // before fabric_: the fabric resolves handles in it
  util::Rng rng_;
  net::Fabric fabric_;
  net::HostTable hosts_;
  ExecRegistry programs_;
  std::map<MachineId, std::unique_ptr<Machine>> machines_;
  MachineId next_machine_ = 1;
  net::HostAddr next_addr_ = 1;
  // Hash-indexed: meter_emit resolves the meter socket (and its peer) on
  // every metered event, so lookup cost is hot-path cost. Iteration sites
  // that affect event ordering sort their worklists first.
  std::unordered_map<SocketId, std::unique_ptr<Socket>> sockets_;
  SocketId next_socket_ = 1;
  std::uint64_t next_internal_name_ = 1;
  std::vector<ExitListener> exit_listeners_;
  std::map<std::string, std::shared_ptr<void>> services_;

  /// Cached instrument handles for the meter hot path (resolved once in
  /// the constructor; the registry's references are stable).
  struct MeterObs {
    obs::Counter* events = nullptr;
    obs::Counter* flushes = nullptr;
    obs::Counter* bytes = nullptr;
    obs::Counter* dropped_batches = nullptr;
    obs::Counter* dropped_bytes = nullptr;
    obs::Counter* malformed_records = nullptr;
    // Record-granular conservation buckets (MeterConservation).
    obs::Counter* consumed_records = nullptr;
    obs::Counter* dropped_records = nullptr;
    obs::Counter* lost_records = nullptr;
    obs::Counter* stranded_records = nullptr;
    obs::Gauge* pending_bytes = nullptr;   // sum of per-process batches
    obs::Gauge* rbuf_bytes = nullptr;      // sum of socket receive buffers
    obs::Histogram* batch_bytes = nullptr; // per delivered flush
    obs::Histogram* batch_msgs = nullptr;
    // Ring transport instruments (meter_ring_bytes > 0).
    obs::Gauge* ring_occupancy = nullptr;  // bytes across rings, high-water
    obs::Counter* ring_wakeups = nullptr;  // wakeup packets sent
    obs::Counter* ring_overflow_drops = nullptr;  // records dropped ring-full
  };
  MeterObs mobs_;

  /// Fan-in tier instruments (tier-1 half of the conservation story).
  struct FanInObs {
    obs::Counter* forwarded = nullptr;       // records handed to meter_forward
    obs::Counter* consumed = nullptr;        // read out of tier-1 conns
    obs::Counter* lost = nullptr;            // dead edge at send/delivery
    obs::Counter* overflow_records = nullptr;  // dropped, receiver queue full
    obs::Counter* overflow_bytes = nullptr;
    obs::Counter* stranded = nullptr;        // complete frames at teardown
    obs::Counter* malformed = nullptr;       // cut-short frames at teardown
    obs::Gauge* queue_bytes = nullptr;  // tier-1 rbuf occupancy, high-water
  };
  FanInObs fobs_;

  obs::Gauge* machines_down_ = nullptr;
  std::vector<std::pair<MachineId, std::function<void(World&)>>> boot_programs_;
  std::unique_ptr<net::FaultInjector> injector_;

  std::uint64_t obs_timer_gen_ = 0;  // bumping it cancels the pending tick
};

}  // namespace dpm::kernel
