// Chrome trace_event export: schema-valid documents with the expected
// lanes, flows, and critical-path track — and a checker that actually
// rejects malformed documents.
#include <gtest/gtest.h>

#include "analysis/live/aggregator.h"
#include "analysis/live/chrome_trace.h"
#include "analysis/trace_reader.h"
#include "analysis_testing.h"

namespace dpm::analysis::live {
namespace {

using analysis_testing::Stamp;
using meter::MeterAccept;
using meter::MeterConnect;
using meter::MeterRecv;
using meter::MeterSend;

/// Two machines, one joined channel, two matched cross-machine pairs.
LiveAnalysis paired_analysis() {
  const Trace trace = read_trace(analysis_testing::trace_text({
      {Stamp{0, 100, 0}, MeterConnect{1, 0, 5, "X", "Y"}},
      {Stamp{1, 120, 0}, MeterAccept{2, 0, 7, 9, "Y", "X"}},
      {Stamp{0, 1000, 0}, MeterSend{1, 0, 5, 64, ""}},
      {Stamp{1, 1400, 0}, MeterRecv{2, 0, 9, 64, ""}},
      {Stamp{1, 1500, 0}, MeterSend{2, 0, 9, 32, ""}},
      {Stamp{0, 1900, 0}, MeterRecv{1, 0, 5, 32, ""}},
  }));
  LiveAnalysis live;
  for (const Event& e : trace.events) live.add_event(e);
  return live;
}

TEST(ChromeTrace, ExportsValidDocumentWithFlowsAndCriticalPath) {
  LiveAnalysis live = paired_analysis();
  const std::string json = chrome_trace_json(live);
  const ChromeTraceCheck check = check_chrome_trace(json);
  ASSERT_TRUE(check.ok) << check.error;
  EXPECT_EQ(check.slices, live.events() + live.critical_path().steps.size());
  EXPECT_EQ(check.flow_pairs, 2u);
  EXPECT_EQ(check.cross_machine_flow_pairs, 2u);
  EXPECT_TRUE(check.has_critical_path);
}

TEST(ChromeTrace, OptionsSuppressFlowsAndCriticalPath) {
  LiveAnalysis live = paired_analysis();
  ChromeTraceOptions opts;
  opts.flows = false;
  opts.critical_path = false;
  const ChromeTraceCheck check =
      check_chrome_trace(chrome_trace_json(live, opts));
  ASSERT_TRUE(check.ok) << check.error;
  EXPECT_EQ(check.slices, live.events());  // event slices only
  EXPECT_EQ(check.flow_pairs, 0u);
  EXPECT_EQ(check.cross_machine_flow_pairs, 0u);
  EXPECT_FALSE(check.has_critical_path);
}

TEST(ChromeTrace, EmptyAnalysisStillValidates) {
  LiveAnalysis live;
  const ChromeTraceCheck check = check_chrome_trace(chrome_trace_json(live));
  ASSERT_TRUE(check.ok) << check.error;
  EXPECT_EQ(check.slices, 0u);
  EXPECT_EQ(check.flow_pairs, 0u);
}

TEST(ChromeTrace, CheckerRejectsMalformedDocuments) {
  EXPECT_FALSE(check_chrome_trace("not json at all").ok);
  EXPECT_FALSE(check_chrome_trace("{}").ok);  // no traceEvents
  EXPECT_FALSE(check_chrome_trace(R"({"traceEvents": 7})").ok);
  // An entry without a phase.
  EXPECT_FALSE(check_chrome_trace(R"({"traceEvents": [{"pid": 1}]})").ok);
  // A slice missing its timestamp.
  EXPECT_FALSE(check_chrome_trace(
                   R"({"traceEvents": [{"ph": "X", "pid": 1, "tid": 1,)"
                   R"( "dur": 5, "name": "send"}]})")
                   .ok);
  // A flow start with no matching finish.
  EXPECT_FALSE(check_chrome_trace(
                   R"({"traceEvents": [{"ph": "s", "pid": 1, "tid": 1,)"
                   R"( "ts": 0, "id": 1, "name": "msg", "cat": "msg"}]})")
                   .ok);
}

TEST(ChromeTrace, SingleProcessHasCriticalPathButNoFlows) {
  // An unpaired single-process trace still gets its program-chain
  // critical-path lane; no message, no flow arrows.
  const Trace trace = read_trace(analysis_testing::trace_text({
      {Stamp{0, 0, 0}, MeterSend{1, 0, 5, 8, ""}},
      {Stamp{0, 10, 0}, MeterSend{1, 0, 5, 8, ""}},
  }));
  LiveAnalysis live;
  for (const Event& e : trace.events) live.add_event(e);
  const ChromeTraceCheck check = check_chrome_trace(chrome_trace_json(live));
  ASSERT_TRUE(check.ok) << check.error;
  EXPECT_EQ(check.slices, live.events() + live.critical_path().steps.size());
  EXPECT_EQ(check.flow_pairs, 0u);
  EXPECT_TRUE(check.has_critical_path);
}

}  // namespace
}  // namespace dpm::analysis::live
