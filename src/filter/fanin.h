// The fan-in tier (hierarchical filtering).
//
// A flat session scales until every metered process on every machine
// streams into one filter: the root's recv serialization becomes the
// cluster's wall. The fan-in tier moves selection to the edge — a
// per-machine *local filter* runs the session's selection rules against
// that machine's meter connections in place and forwards only accepted
// records, as re-framed wire-byte batches, to *aggregator* nodes arranged
// in a configurable-arity tree rooted at the session filter. Cross-fabric
// traffic then scales with accepted records, not emitted events; the root
// re-runs the same rules over the forwarded stream (idempotent — forwarded
// bytes are full pre-discard records) and renders the log exactly as in a
// flat session.
//
// Every tier edge is marked with metertap() and its records accounted in
// the kernel's tier-1 conservation ledger (World::fanin_conservation);
// see DESIGN.md §11 for the forwarding frame format and overflow policy.
#pragma once

#include <string>
#include <vector>

#include "kernel/exec_registry.h"

namespace dpm::filter {

/// The per-machine filter stage. argv: <exe> <descriptions> <templates>
/// <meter-port> <parent-host> <parent-port>. Binds the machine's meter
/// port, selects over inbound meter connections with the session's rules,
/// stages accepted records' wire bytes, and ships them up the tree.
kernel::ProcessMain make_localfilter_main(const std::vector<std::string>& argv);

/// An interior fan-in node. argv: <exe> <port> <parent-host> <parent-port>.
/// No selection — children already filtered; it re-frames inbound tier-1
/// streams into whole records, concatenates them, and forwards upward.
kernel::ProcessMain make_aggregator_main(const std::vector<std::string>& argv);

/// Registers "localfilter" and "aggregator" in the registry.
void register_fanin_programs(kernel::ExecRegistry& registry);

/// Program names.
inline constexpr const char* kLocalFilterProgram = "localfilter";
inline constexpr const char* kAggregatorProgram = "aggregator";

}  // namespace dpm::filter
