// Per-machine clock model.
//
// The paper (§1.1) stresses that machine clocks cannot be fully
// synchronized: each machine's clock has an offset and a rate error, and
// readings are quantized. Meter-message headers carry these *local*
// readings, so analysis code must tolerate skew. The model:
//
//   local(t) = quantize((t - epoch) * (1 + drift) + offset, tick)
//
// where t is true simulated time.
#pragma once

#include <cstdint>

#include "util/time.h"

namespace dpm::sim {

class MachineClock {
 public:
  struct Config {
    util::Duration offset{0};   // constant skew from true time
    double drift_ppm = 0.0;     // rate error in parts per million
    util::Duration tick{100};   // reading granularity (4.2BSD line clock ~10ms;
                                // default finer so tests can see ordering)
  };

  MachineClock() = default;
  explicit MachineClock(Config cfg) : cfg_(cfg) {}

  /// Local wall-clock reading, in microseconds since the machine's epoch.
  /// Memoized on the true-time instant: in a discrete-event world many
  /// reads land on the same instant (every event of an emit burst), and
  /// the skew model is a pure function of it.
  std::int64_t read_us(util::TimePoint true_now) const {
    const std::int64_t t = util::count_us(true_now);
    if (t == memo_t_) return memo_r_;
    memo_t_ = t;
    memo_r_ = skewed_us(t);
    return memo_r_;
  }

  const Config& config() const { return cfg_; }

  /// Inverts the skew model: the true time whose reading is `local_us`.
  /// Exact up to quantization — |local(true_us_from_local(x)) - x| < tick
  /// — so analysis ground truth recovered this way is tick-accurate.
  std::int64_t true_us_from_local(std::int64_t local_us) const;

  /// Worst-case |reading - true time| over true times in [0, horizon]:
  /// |offset| + |drift| * horizon + tick. Two machines' readings of one
  /// instant differ by at most the sum of their bounds — the ε the
  /// predicate detector (analysis/predicates/) is parameterized by.
  std::int64_t error_bound_us(std::int64_t horizon_us) const;

 private:
  std::int64_t skewed_us(std::int64_t true_us) const;

  Config cfg_;
  mutable std::int64_t memo_t_ = -1;
  mutable std::int64_t memo_r_ = 0;
};

}  // namespace dpm::sim
