// Byte buffers and fixed-layout binary serialization.
//
// Meter messages and daemon protocol messages are defined by *byte layout*
// (the filter locates fields by offset/length, exactly as the paper's
// description files do), so serialization is explicit little-endian with
// fixed widths — never memcpy of structs.
#pragma once

#include <cstddef>
#include <cstdint>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

namespace dpm::util {

using Bytes = std::vector<std::uint8_t>;

/// Appends fixed-width little-endian values to a byte vector.
class BinaryWriter {
 public:
  BinaryWriter() = default;

  void u8(std::uint8_t v);
  void u16(std::uint16_t v);
  void u32(std::uint32_t v);
  void u64(std::uint64_t v);
  void i32(std::int32_t v);
  void i64(std::int64_t v);
  /// Raw bytes, no length prefix.
  void raw(const std::uint8_t* data, std::size_t n);
  void raw(const Bytes& b);
  /// u32 length prefix followed by the bytes of `s`.
  void lstring(std::string_view s);
  /// Exactly `width` bytes: `s` truncated or zero-padded (fixed-layout field).
  void fixed_string(std::string_view s, std::size_t width);

  /// Overwrites a previously written u32 at `at` (for back-patched sizes).
  void patch_u32(std::size_t at, std::uint32_t v);

  std::size_t size() const { return out_.size(); }
  const Bytes& bytes() const& { return out_; }
  Bytes take() { return std::move(out_); }

 private:
  Bytes out_;
};

/// Bounds-checked reader over a byte span. All getters return nullopt past
/// the end; once a read fails the reader stays failed (`ok()` is false).
class BinaryReader {
 public:
  explicit BinaryReader(const Bytes& b) : data_(b.data()), size_(b.size()) {}
  BinaryReader(const std::uint8_t* data, std::size_t size)
      : data_(data), size_(size) {}

  std::optional<std::uint8_t> u8();
  std::optional<std::uint16_t> u16();
  std::optional<std::uint32_t> u32();
  std::optional<std::uint64_t> u64();
  std::optional<std::int32_t> i32();
  std::optional<std::int64_t> i64();
  std::optional<Bytes> raw(std::size_t n);
  std::optional<std::string> lstring();
  /// Reads `width` bytes and strips trailing NULs (fixed-layout field).
  std::optional<std::string> fixed_string(std::size_t width);

  bool ok() const { return !failed_; }
  std::size_t remaining() const { return size_ - pos_; }
  std::size_t pos() const { return pos_; }
  void skip(std::size_t n);

 private:
  bool need(std::size_t n);
  const std::uint8_t* data_;
  std::size_t size_;
  std::size_t pos_ = 0;
  bool failed_ = false;
};

/// Hex dump ("de ad be ef") of at most `max_bytes` bytes, for diagnostics.
std::string hex_dump(const Bytes& b, std::size_t max_bytes = 64);

Bytes to_bytes(std::string_view s);
std::string to_string(const Bytes& b);

}  // namespace dpm::util
