// Shared helpers for the test suite.
#pragma once

#include <string>
#include <vector>

#include "kernel/syscalls.h"
#include "kernel/world.h"

namespace dpm::testing {

/// Adds machines named after the paper's figures ("red", "green", "blue",
/// "yellow", ...) to the world.
inline std::vector<kernel::MachineId> add_machines(
    kernel::World& world, const std::vector<std::string>& names) {
  std::vector<kernel::MachineId> out;
  out.reserve(names.size());
  for (const auto& n : names) out.push_back(world.add_machine(n));
  return out;
}

/// A default world config with quiet, deterministic settings.
inline kernel::WorldConfig quick_config(std::uint64_t seed = 1) {
  kernel::WorldConfig cfg;
  cfg.seed = seed;
  return cfg;
}

}  // namespace dpm::testing
