#include "util/rng.h"

#include <gtest/gtest.h>

#include <set>

namespace dpm::util {
namespace {

TEST(Rng, DeterministicForSeed) {
  Rng a(42), b(42);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.next_u64(), b.next_u64());
}

TEST(Rng, DifferentSeedsDiffer) {
  Rng a(1), b(2);
  int same = 0;
  for (int i = 0; i < 64; ++i) {
    if (a.next_u64() == b.next_u64()) ++same;
  }
  EXPECT_LT(same, 2);
}

TEST(Rng, UniformStaysInRange) {
  Rng r(7);
  for (int i = 0; i < 1000; ++i) {
    const auto v = r.uniform(-3, 9);
    EXPECT_GE(v, -3);
    EXPECT_LE(v, 9);
  }
}

TEST(Rng, UniformSingleton) {
  Rng r(7);
  for (int i = 0; i < 10; ++i) EXPECT_EQ(r.uniform(5, 5), 5);
}

TEST(Rng, Uniform01InHalfOpenRange) {
  Rng r(11);
  for (int i = 0; i < 1000; ++i) {
    const double v = r.uniform01();
    EXPECT_GE(v, 0.0);
    EXPECT_LT(v, 1.0);
  }
}

TEST(Rng, BernoulliEdges) {
  Rng r(3);
  for (int i = 0; i < 10; ++i) {
    EXPECT_FALSE(r.bernoulli(0.0));
    EXPECT_TRUE(r.bernoulli(1.0));
  }
}

TEST(Rng, BernoulliRoughlyFair) {
  Rng r(5);
  int heads = 0;
  for (int i = 0; i < 10000; ++i) heads += r.bernoulli(0.5);
  EXPECT_GT(heads, 4500);
  EXPECT_LT(heads, 5500);
}

TEST(Rng, ExponentialPositiveWithRoughMean) {
  Rng r(9);
  double sum = 0;
  for (int i = 0; i < 20000; ++i) {
    const double v = r.exponential(10.0);
    EXPECT_GT(v, 0.0);
    sum += v;
  }
  EXPECT_NEAR(sum / 20000.0, 10.0, 0.5);
}

TEST(Rng, ForkIndependentStreams) {
  Rng a(13);
  Rng b = a.fork();
  std::set<std::uint64_t> seen;
  for (int i = 0; i < 50; ++i) {
    seen.insert(a.next_u64());
    seen.insert(b.next_u64());
  }
  EXPECT_EQ(seen.size(), 100u);
}

}  // namespace
}  // namespace dpm::util
