#include "obs/json.h"

#include <cctype>

#include "util/strings.h"

namespace dpm::obs {

std::optional<JsonValue> JsonParser::parse() {
  skip_ws();
  auto v = value();
  if (!v) return std::nullopt;
  skip_ws();
  if (pos_ != s_.size()) return fail("trailing characters");
  return v;
}

std::optional<JsonValue> JsonParser::fail(const char* what) {
  if (err_ && err_->empty()) {
    *err_ = util::strprintf("%s at offset %zu", what, pos_);
  }
  return std::nullopt;
}

void JsonParser::skip_ws() {
  while (pos_ < s_.size() &&
         std::isspace(static_cast<unsigned char>(s_[pos_]))) {
    ++pos_;
  }
}

bool JsonParser::consume(char c) {
  if (pos_ < s_.size() && s_[pos_] == c) {
    ++pos_;
    return true;
  }
  return false;
}

std::optional<JsonValue> JsonParser::value() {
  skip_ws();
  if (pos_ >= s_.size()) return fail("unexpected end");
  const char c = s_[pos_];
  if (c == '{') return object();
  if (c == '[') return array();
  if (c == '"') return string_value();
  if (c == 't' || c == 'f') return boolean();
  if (c == 'n') {
    if (s_.compare(pos_, 4, "null") == 0) {
      pos_ += 4;
      return JsonValue{};
    }
    return fail("bad literal");
  }
  return number();
}

std::optional<JsonValue> JsonParser::boolean() {
  JsonValue v;
  v.kind = JsonValue::Kind::boolean;
  if (s_.compare(pos_, 4, "true") == 0) {
    v.b = true;
    pos_ += 4;
    return v;
  }
  if (s_.compare(pos_, 5, "false") == 0) {
    v.b = false;
    pos_ += 5;
    return v;
  }
  return fail("bad literal");
}

std::optional<JsonValue> JsonParser::number() {
  const std::size_t start = pos_;
  if (consume('-')) {}
  while (pos_ < s_.size() &&
         (std::isdigit(static_cast<unsigned char>(s_[pos_])) ||
          s_[pos_] == '.' || s_[pos_] == 'e' || s_[pos_] == 'E' ||
          s_[pos_] == '+' || s_[pos_] == '-')) {
    ++pos_;
  }
  if (pos_ == start) return fail("bad number");
  JsonValue v;
  v.kind = JsonValue::Kind::number;
  try {
    v.num = std::stod(s_.substr(start, pos_ - start));
  } catch (...) {
    return fail("bad number");
  }
  return v;
}

std::optional<std::string> JsonParser::raw_string() {
  if (!consume('"')) {
    fail("expected string");
    return std::nullopt;
  }
  std::string out;
  while (pos_ < s_.size()) {
    const char c = s_[pos_++];
    if (c == '"') return out;
    if (c == '\\') {
      if (pos_ >= s_.size()) break;
      const char e = s_[pos_++];
      switch (e) {
        case '"': out += '"'; break;
        case '\\': out += '\\'; break;
        case '/': out += '/'; break;
        case 'n': out += '\n'; break;
        case 't': out += '\t'; break;
        case 'r': out += '\r'; break;
        case 'b': out += '\b'; break;
        case 'f': out += '\f'; break;
        case 'u':
          // The monitor's writers only escape control characters; decode
          // to '?'.
          if (pos_ + 4 <= s_.size()) pos_ += 4;
          out += '?';
          break;
        default: out += e;
      }
    } else {
      out += c;
    }
  }
  fail("unterminated string");
  return std::nullopt;
}

std::optional<JsonValue> JsonParser::string_value() {
  auto s = raw_string();
  if (!s) return std::nullopt;
  JsonValue v;
  v.kind = JsonValue::Kind::string;
  v.str = std::move(*s);
  return v;
}

std::optional<JsonValue> JsonParser::array() {
  consume('[');
  JsonValue v;
  v.kind = JsonValue::Kind::array;
  skip_ws();
  if (consume(']')) return v;
  for (;;) {
    auto elem = value();
    if (!elem) return std::nullopt;
    v.arr.push_back(std::move(*elem));
    skip_ws();
    if (consume(']')) return v;
    if (!consume(',')) return fail("expected ',' in array");
  }
}

std::optional<JsonValue> JsonParser::object() {
  consume('{');
  JsonValue v;
  v.kind = JsonValue::Kind::object;
  skip_ws();
  if (consume('}')) return v;
  for (;;) {
    skip_ws();
    auto key = raw_string();
    if (!key) return std::nullopt;
    skip_ws();
    if (!consume(':')) return fail("expected ':'");
    auto val = value();
    if (!val) return std::nullopt;
    v.obj.emplace(std::move(*key), std::move(*val));
    skip_ws();
    if (consume('}')) return v;
    if (!consume(',')) return fail("expected ',' in object");
  }
}

const JsonValue* json_field(const JsonValue& obj, const char* key,
                            JsonValue::Kind kind) {
  auto it = obj.obj.find(key);
  if (it == obj.obj.end() || it->second.kind != kind) return nullptr;
  return &it->second;
}

void json_append_escaped(std::string& out, const std::string& s) {
  out += '"';
  for (char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          out += util::strprintf("\\u%04x", c);
        } else {
          out += c;
        }
    }
  }
  out += '"';
}

}  // namespace dpm::obs
