// Measurement of parallelism (§3.3).
//
// A process is considered *active* from its first trace event to its
// termination (or last event), except while it is waiting for a message —
// the interval between a RECVCALL record and the matching RECEIVE on the
// same socket (that interval is exactly what the paper's separate
// receivecall/receive events make observable). Sweeping these activity
// intervals yields the fraction of wall time during which k processes
// were simultaneously active.
//
// Timestamps are the machines' local clocks; cross-machine skew shifts
// intervals slightly (the paper's caveat about global time applies).
#pragma once

#include <cstdint>
#include <vector>

#include "analysis/trace_reader.h"

namespace dpm::analysis {

struct ParallelismProfile {
  /// time_at_level[k] = microseconds during which exactly k processes were
  /// active, for k in [0, processes].
  std::vector<std::int64_t> time_at_level;
  std::int64_t total_us = 0;       // observation window length
  std::size_t processes = 0;
  double average = 0.0;            // time-weighted mean parallelism

  double fraction_at(std::size_t k) const {
    if (total_us <= 0 || k >= time_at_level.size()) return 0.0;
    return static_cast<double>(time_at_level[k]) /
           static_cast<double>(total_us);
  }
};

ParallelismProfile measure_parallelism(const Trace& trace);

}  // namespace dpm::analysis
