#include "analysis/parallelism.h"

#include <gtest/gtest.h>

#include "analysis_testing.h"

namespace dpm::analysis {
namespace {

using analysis_testing::Stamp;
using meter::MeterRecv;
using meter::MeterRecvCall;
using meter::MeterSend;
using meter::MeterTermProc;

TEST(Parallelism, TwoFullyOverlappingProcesses) {
  auto trace = analysis_testing::make_trace({
      {Stamp{0, 0, 0}, MeterSend{1, 0, 5, 1, ""}},
      {Stamp{1, 0, 0}, MeterSend{2, 0, 6, 1, ""}},
      {Stamp{0, 1000, 0}, MeterTermProc{1, 0, 0}},
      {Stamp{1, 1000, 0}, MeterTermProc{2, 0, 0}},
  });
  ParallelismProfile p = measure_parallelism(trace);
  EXPECT_EQ(p.processes, 2u);
  EXPECT_EQ(p.total_us, 1000);
  EXPECT_DOUBLE_EQ(p.fraction_at(2), 1.0);
  EXPECT_NEAR(p.average, 2.0, 1e-9);
}

TEST(Parallelism, DisjointProcessesNeverOverlap) {
  auto trace = analysis_testing::make_trace({
      {Stamp{0, 0, 0}, MeterSend{1, 0, 5, 1, ""}},
      {Stamp{0, 400, 0}, MeterTermProc{1, 0, 0}},
      {Stamp{1, 600, 0}, MeterSend{2, 0, 6, 1, ""}},
      {Stamp{1, 1000, 0}, MeterTermProc{2, 0, 0}},
  });
  ParallelismProfile p = measure_parallelism(trace);
  EXPECT_EQ(p.total_us, 1000);
  EXPECT_DOUBLE_EQ(p.fraction_at(1), 0.8);  // 0-400 and 600-1000
  EXPECT_DOUBLE_EQ(p.fraction_at(0), 0.2);  // the 200us gap
  EXPECT_NEAR(p.average, 0.8, 1e-9);
}

TEST(Parallelism, ReceiveWaitDoesNotCountAsActive) {
  // One process active 0..1000 but waiting for a message 200..700: the
  // recvcall/receive pair carves the wait out of its activity.
  auto trace = analysis_testing::make_trace({
      {Stamp{0, 0, 0}, MeterSend{1, 0, 5, 1, ""}},
      {Stamp{0, 200, 0}, MeterRecvCall{1, 0, 5}},
      {Stamp{0, 700, 0}, MeterRecv{1, 0, 5, 8, ""}},
      {Stamp{0, 1000, 0}, MeterTermProc{1, 0, 0}},
  });
  ParallelismProfile p = measure_parallelism(trace);
  EXPECT_EQ(p.total_us, 1000);
  EXPECT_DOUBLE_EQ(p.fraction_at(1), 0.5);
  EXPECT_DOUBLE_EQ(p.fraction_at(0), 0.5);
}

TEST(Parallelism, WaitMatchingIsPerSocket) {
  // A recvcall on sock 5 must not be closed by a receive on sock 6.
  auto trace = analysis_testing::make_trace({
      {Stamp{0, 0, 0}, MeterSend{1, 0, 5, 1, ""}},
      {Stamp{0, 100, 0}, MeterRecvCall{1, 0, 5}},
      {Stamp{0, 300, 0}, MeterRecv{1, 0, 6, 8, ""}},  // different socket
      {Stamp{0, 400, 0}, MeterRecv{1, 0, 5, 8, ""}},  // closes the wait
      {Stamp{0, 500, 0}, MeterTermProc{1, 0, 0}},
  });
  ParallelismProfile p = measure_parallelism(trace);
  // Wait was 100..400 (300us of 500us window).
  EXPECT_DOUBLE_EQ(p.fraction_at(0), 0.6);
  EXPECT_DOUBLE_EQ(p.fraction_at(1), 0.4);
}

TEST(Parallelism, EmptyTrace) {
  Trace t;
  ParallelismProfile p = measure_parallelism(t);
  EXPECT_EQ(p.processes, 0u);
  EXPECT_EQ(p.total_us, 0);
}

TEST(Parallelism, AverageWeighting) {
  // Three processes: one covers [0,900], two more cover [0,300].
  auto trace = analysis_testing::make_trace({
      {Stamp{0, 0, 0}, MeterSend{1, 0, 5, 1, ""}},
      {Stamp{1, 0, 0}, MeterSend{2, 0, 6, 1, ""}},
      {Stamp{2, 0, 0}, MeterSend{3, 0, 7, 1, ""}},
      {Stamp{1, 300, 0}, MeterTermProc{2, 0, 0}},
      {Stamp{2, 300, 0}, MeterTermProc{3, 0, 0}},
      {Stamp{0, 900, 0}, MeterTermProc{1, 0, 0}},
  });
  ParallelismProfile p = measure_parallelism(trace);
  EXPECT_EQ(p.total_us, 900);
  EXPECT_NEAR(p.fraction_at(3), 1.0 / 3.0, 1e-9);
  EXPECT_NEAR(p.fraction_at(1), 2.0 / 3.0, 1e-9);
  EXPECT_NEAR(p.average, (3 * 300 + 1 * 600) / 900.0, 1e-9);
}

}  // namespace
}  // namespace dpm::analysis
