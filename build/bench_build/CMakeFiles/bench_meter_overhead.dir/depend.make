# Empty dependencies file for bench_meter_overhead.
# This may be replaced when dependencies are built.
