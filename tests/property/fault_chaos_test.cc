// Fault chaos: full monitoring sessions under randomized FaultPlans —
// loss bursts, latency spikes, partitions, stream resets, machine
// crash/restart pairs — must still terminate, keep the controller
// coherent, conserve every meter record exactly, and leave a surviving
// trace whose streaming analysis agrees with batch.
#include <gtest/gtest.h>

#include "analysis/live/aggregator.h"
#include "analysis/ordering.h"
#include "analysis/trace_reader.h"
#include "apps/apps.h"
#include "control/session.h"
#include "net/faults.h"
#include "obs/snapshot.h"
#include "testing.h"
#include "util/rng.h"
#include "util/strings.h"

namespace dpm {
namespace {

class FaultChaosTest : public ::testing::TestWithParam<std::uint64_t> {};

// The three fixed seeds scripts/check_chaos.sh replays under sanitizers,
// plus two more for the regular suite.
INSTANTIATE_TEST_SUITE_P(Seeds, FaultChaosTest,
                         ::testing::Values(11, 74, 1903, 29041, 57005));

/// One full randomized-fault monitoring session. Shared by the legacy
/// transport suite (cfg.meter_ring_bytes == 0) and the ring transport
/// suite, so the same storms exercise both meter paths seed for seed.
void run_session_chaos(std::uint64_t seed, kernel::WorldConfig cfg) {
  util::Rng rng(seed);
  kernel::World world(cfg);
  auto machines = dpm::testing::add_machines(world, {"hub", "a", "b", "c"});
  control::install_monitor(world);
  apps::install_everywhere(world);
  control::spawn_meterdaemons(world);
  control::MonitorSession session(
      world, control::MonitorSession::Options{.host = "hub", .uid = 100});
  world.run();
  (void)session.drain_output();

  (void)session.command("filter f1 hub");
  (void)session.command("newjob storm");

  // Random workload mix across the three non-hub machines.
  const int npairs = static_cast<int>(rng.uniform(2, 4));
  const char* hosts[] = {"a", "b", "c"};
  for (int i = 0; i < npairs; ++i) {
    const int port = 5800 + i;
    const char* srv = hosts[rng.uniform(0, 2)];
    const char* cli = hosts[rng.uniform(0, 2)];
    const auto rounds = rng.uniform(5, 40);
    if (rng.bernoulli(0.5)) {
      (void)session.command(util::strprintf(
          "addprocess storm %s pingpong_server %d %lld", srv, port,
          static_cast<long long>(rounds)));
      (void)session.command(util::strprintf(
          "addprocess storm %s pingpong_client %s %d %lld 48", cli, srv, port,
          static_cast<long long>(rounds)));
    } else {
      (void)session.command(util::strprintf(
          "addprocess storm %s dgram_sink %d 50", srv, port));
      (void)session.command(util::strprintf(
          "addprocess storm %s dgram_sender %s %d %lld 48", cli, srv, port,
          static_cast<long long>(rounds)));
    }
  }
  (void)session.command("setflags storm all");

  // Arm a reproducible random fault plan over the whole fleet (random()
  // never crashes the hub and pairs every crash with a restart), then let
  // the job run through it.
  const net::FaultPlan plan =
      net::FaultPlan::random(seed, {"hub", "a", "b", "c"}, util::msec(150));
  ASSERT_FALSE(plan.empty());
  world.install_faults(plan);
  session.send_line("startjob storm");

  // Termination: the world quiesces even with faults firing mid-flight.
  world.run_for(util::msec(80));
  const std::string mid_snapshot = world.obs_snapshot();
  world.run();
  (void)session.drain_output();

  // The controller survived and answers commands; reconcile clears any
  // machine marked down whose daemon (respawned by the restart boot
  // program) answers again.
  ASSERT_TRUE(session.controller_alive());
  (void)session.command("reconcile");
  std::string out = session.command("jobs storm");
  EXPECT_NE(out.find("job 'storm'"), std::string::npos) << out;

  // Exact record conservation at quiescence: every emitted record is
  // consumed, dropped, lost, stranded, malformed, pending, or buffered.
  const kernel::MeterConservation cons = world.meter_conservation();
  EXPECT_TRUE(cons.balanced())
      << "emitted=" << cons.emitted << " accounted=" << cons.accounted()
      << " consumed=" << cons.consumed << " dropped=" << cons.dropped
      << " lost=" << cons.lost << " stranded=" << cons.stranded
      << " malformed=" << cons.malformed << " pending=" << cons.pending
      << " buffered=" << cons.buffered;

  // Whatever trace survived is parseable, and streaming analysis agrees
  // with batch on it event for event.
  (void)session.command("getlog f1 t");
  auto text = world.machine(machines[0]).fs.read_text("t");
  ASSERT_TRUE(text.has_value());
  analysis::Trace trace = analysis::read_trace(*text);
  EXPECT_EQ(trace.malformed, 0u);
  analysis::Ordering ord = analysis::order_events(trace);

  analysis::live::LiveAnalysis live;
  for (const analysis::Event& e : trace.events) live.add_event(e);
  ASSERT_EQ(live.events(), trace.events.size());
  const auto st = live.stats();
  EXPECT_EQ(st.message_pairs, ord.message_pairs);
  EXPECT_EQ(st.had_cycle, ord.had_cycle);
  for (std::size_t i = 0; i < trace.events.size(); ++i) {
    ASSERT_EQ(live.lamport_of(i), ord.events[i].lamport) << "at " << i;
  }

  // Counters are monotone across the fault storm: nothing a fault does
  // may make an accumulated count go backwards.
  std::string err;
  auto mid = obs::parse_snapshot(mid_snapshot, &err);
  ASSERT_TRUE(mid.has_value()) << err;
  auto end = obs::parse_snapshot(world.obs_snapshot(), &err);
  ASSERT_TRUE(end.has_value()) << err;
  for (const auto& [name, value] : mid->counters) {
    auto it = end->counters.find(name);
    ASSERT_NE(it, end->counters.end()) << name;
    EXPECT_GE(it->second, value) << name;
  }

  // Cleanup still works.
  (void)session.command("stopjob storm");
  (void)session.command("removejob storm");
  (void)session.command("die");
  (void)session.command("die");
  world.run();
  EXPECT_FALSE(session.controller_alive());

  // Ring-transport runs: the fast path really carried the session (the
  // doorbell edge saw traffic) and its gauges drained — at quiescence no
  // ring holds bytes that conservation has not already walked.
  if (cfg.meter_ring_bytes > 0) {
    EXPECT_GT(world.obs().counter("ring.wakeups").value(), 0u);
    EXPECT_GE(world.obs().gauge("ring.occupancy").high_water(), 0);
  }
}

TEST_P(FaultChaosTest, SessionSurvivesRandomFaultPlan) {
  const std::uint64_t seed = GetParam();
  run_session_chaos(seed, dpm::testing::quick_config(seed));
}

TEST_P(FaultChaosTest, ShardedFanInSessionSurvivesStorm) {
  // A sharded session — local filters on every machine, aggregators in an
  // arity-4 tree, batched/pipelined controller RPC — hit with a targeted
  // storm: an aggregator host crashes mid-fan-in, the controller is
  // partitioned from one shard (and heals), plus a seeded loss burst.
  // Both conservation ledgers must balance and the surviving trace must
  // stream-analyze identically to batch, through the aggregation tier.
  const std::uint64_t seed = GetParam();
  kernel::World world(dpm::testing::quick_config(seed));
  std::vector<std::string> names = {"hub"};
  for (int i = 1; i <= 12; ++i) names.push_back("n" + std::to_string(i));
  auto machines = dpm::testing::add_machines(world, names);
  control::install_monitor(world);
  apps::install_everywhere(world);
  control::spawn_meterdaemons(world);
  control::MonitorSession session(
      world, control::MonitorSession::Options{.host = "hub", .uid = 100});
  world.run();
  (void)session.drain_output();

  (void)session.command("rpcmode batched 8");
  (void)session.command("filter f1 hub");
  std::string fan = session.command("fanin f1 4 n 1 12");
  ASSERT_NE(fan.find("12 local filters (0 failed), 3 aggregators (0 failed)"),
            std::string::npos)
      << fan;

  // One metered burst sender per machine plus two cross-machine pairs, so
  // records flow through every leaf and pairs survive for the analysis.
  (void)session.command("newjob storm");
  (void)session.command(
      "addgroup storm n 1 12 1 burst_sender self 9 30 48 512 4 500");
  (void)session.command("addprocess storm n2 pingpong_server 5900 12");
  (void)session.command("addprocess storm n3 pingpong_client n2 5900 12 48");
  (void)session.command("setflags storm all");

  // The targeted storm, jittered per seed: n5 hosts the second-group
  // aggregator (groups n1-n4, n5-n8, n9-n12 at arity 4); n9 is a shard
  // the controller loses mid-run.
  const long long j = static_cast<long long>(seed % 7);
  const auto dsl = util::strprintf(
      "drop@%lldms net=0 for=20ms p=0.5\n"
      "partition@%lldms hub n9 for=40ms\n"
      "crash@%lldms n5\n"
      "restart@%lldms n5\n"
      "reset@%lldms hub n1\n",
      8 + j, 12 + j, 20 + j, 70 + j, 45 + j);
  auto plan = net::FaultPlan::parse(dsl);
  ASSERT_TRUE(plan.has_value());
  world.install_faults(*plan);
  session.send_line("startjob storm");
  world.run_for(util::msec(80));
  const std::string mid_snapshot = world.obs_snapshot();
  world.run();
  (void)session.drain_output();

  ASSERT_TRUE(session.controller_alive());
  (void)session.command("reconcile");
  std::string out = session.command("jobs storm");
  EXPECT_NE(out.find("job 'storm'"), std::string::npos) << out;

  // Tier-0: every emitted record accounted for.
  const kernel::MeterConservation cons = world.meter_conservation();
  EXPECT_TRUE(cons.balanced())
      << "emitted=" << cons.emitted << " accounted=" << cons.accounted()
      << " consumed=" << cons.consumed << " dropped=" << cons.dropped
      << " lost=" << cons.lost << " stranded=" << cons.stranded
      << " malformed=" << cons.malformed << " pending=" << cons.pending
      << " buffered=" << cons.buffered;
  // Tier-1: everything the local filters and aggregators forwarded is
  // accounted for too, even with an aggregator dead mid-tree.
  const kernel::FanInConservation fic = world.fanin_conservation();
  EXPECT_GT(fic.forwarded, 0u);
  EXPECT_TRUE(fic.balanced())
      << "forwarded=" << fic.forwarded << " accounted=" << fic.accounted()
      << " consumed=" << fic.consumed << " lost=" << fic.lost
      << " overflow=" << fic.overflow << " stranded=" << fic.stranded
      << " malformed=" << fic.malformed << " buffered=" << fic.buffered;

  // The trace that reached the root through the tree is parseable and
  // batch/live equivalent.
  (void)session.command("getlog f1 t");
  auto text = world.machine(machines[0]).fs.read_text("t");
  ASSERT_TRUE(text.has_value());
  analysis::Trace trace = analysis::read_trace(*text);
  EXPECT_EQ(trace.malformed, 0u);
  analysis::Ordering ord = analysis::order_events(trace);
  analysis::live::LiveAnalysis live;
  for (const analysis::Event& e : trace.events) live.add_event(e);
  ASSERT_EQ(live.events(), trace.events.size());
  EXPECT_EQ(live.stats().message_pairs, ord.message_pairs);
  for (std::size_t i = 0; i < trace.events.size(); ++i) {
    ASSERT_EQ(live.lamport_of(i), ord.events[i].lamport) << "at " << i;
  }

  // Counter monotonicity across the storm.
  std::string err;
  auto mid = obs::parse_snapshot(mid_snapshot, &err);
  ASSERT_TRUE(mid.has_value()) << err;
  auto end = obs::parse_snapshot(world.obs_snapshot(), &err);
  ASSERT_TRUE(end.has_value()) << err;
  for (const auto& [name, value] : mid->counters) {
    auto it = end->counters.find(name);
    ASSERT_NE(it, end->counters.end()) << name;
    EXPECT_GE(it->second, value) << name;
  }

  (void)session.command("stopjob storm");
  (void)session.command("removejob storm");
  (void)session.command("die");
  (void)session.command("die");
  world.run();
  EXPECT_FALSE(session.controller_alive());
}

TEST_P(FaultChaosTest, SessionSurvivesRandomFaultPlanOnRingTransport) {
  // Satellite: the same seeded storms with the ring transport switched on.
  // Seed 11 runs a deliberately tiny ring so wakeup loss + slow drains
  // force overflow-to-drop bursts; conservation and the batch==live
  // equivalence must hold regardless, and the generic counter sweep above
  // checks ring.* monotonicity across the storm.
  const std::uint64_t seed = GetParam();
  kernel::WorldConfig cfg = dpm::testing::quick_config(seed);
  cfg.meter_ring_bytes = seed == 11 ? 2 * 1024 : 16 * 1024;
  cfg.meter_ring_wakeup_bytes = seed == 11 ? 256 : 1024;
  run_session_chaos(seed, cfg);
}

}  // namespace
}  // namespace dpm
