file(REMOVE_RECURSE
  "CMakeFiles/dpm_sim.dir/sim/clock.cc.o"
  "CMakeFiles/dpm_sim.dir/sim/clock.cc.o.d"
  "CMakeFiles/dpm_sim.dir/sim/event_queue.cc.o"
  "CMakeFiles/dpm_sim.dir/sim/event_queue.cc.o.d"
  "CMakeFiles/dpm_sim.dir/sim/executive.cc.o"
  "CMakeFiles/dpm_sim.dir/sim/executive.cc.o.d"
  "CMakeFiles/dpm_sim.dir/sim/task.cc.o"
  "CMakeFiles/dpm_sim.dir/sim/task.cc.o.d"
  "libdpm_sim.a"
  "libdpm_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dpm_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
