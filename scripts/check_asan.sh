#!/bin/sh
# Builds the whole tree (library, tests, benches, example smokes) under
# AddressSanitizer + UndefinedBehaviorSanitizer and runs the full ctest
# suite. The streaming-analysis paths are pointer-heavy (wire views,
# parked-event queues, incremental relaxation), so this is the config that
# catches lifetime mistakes the plain build never trips over.
#
#   scripts/check_asan.sh [-j N]
set -eu

jobs="$(nproc 2>/dev/null || echo 4)"
if [ "${1:-}" = "-j" ] && [ -n "${2:-}" ]; then
  jobs="$2"
fi

cd "$(dirname "$0")/.."
cmake --preset asan
cmake --build --preset asan -j "$jobs"
ctest --preset asan -j "$jobs"
