// Property test for the compiled template engine: on records decoded via
// the standard descriptions, CompiledTemplates must produce byte-identical
// accept/discard decisions to the interpreted Templates evaluator, for
// random rule sets over random meter messages. The lowered FilterBytecode
// must in turn agree with CompiledTemplates on wire-byte views — before,
// during, and after its adaptive clause reorder.
#include <gtest/gtest.h>

#include "filter/bytecode.h"
#include "filter/compiled_templates.h"
#include "filter/trace.h"
#include "meter/metermsgs.h"
#include "util/rng.h"

namespace dpm::filter {
namespace {

// Field pool mixing fields common to every record (header), fields of
// some types only (destName, newPid, sockName...), and one bogus name so
// rules can be infeasible everywhere.
const char* kFields[] = {"machine",  "type",   "pid",      "sock",
                         "msgLength", "cpuTime", "destName", "sockName",
                         "peerName",  "newPid",  "size",     "ghost"};
const char* kOps[] = {"=", "!=", "<", ">", "<=", ">="};

std::string random_name(util::Rng& rng) {
  // Socket names in this kernel render as decimal numbers (internet
  // names, Fig 3.3), but throw in the odd non-numeric string too.
  if (rng.bernoulli(0.2)) return "addr-" + std::to_string(rng.uniform(0, 4));
  return std::to_string(rng.uniform(0, 300000));
}

meter::MeterMsg random_msg(util::Rng& rng) {
  meter::MeterMsg m;
  const meter::Pid pid = static_cast<meter::Pid>(rng.uniform(1, 30));
  const meter::SocketId sock = rng.uniform(0, 8);
  switch (rng.uniform(0, 5)) {
    case 0:
      m.body = meter::MeterSend{pid, 0, sock,
                                static_cast<std::uint32_t>(rng.uniform(0, 2048)),
                                random_name(rng)};
      break;
    case 1:
      m.body = meter::MeterRecv{pid, 0, sock,
                                static_cast<std::uint32_t>(rng.uniform(0, 2048)),
                                random_name(rng)};
      break;
    case 2:
      m.body = meter::MeterFork{pid, 0, static_cast<meter::Pid>(pid + 1)};
      break;
    case 3:
      m.body = meter::MeterAccept{pid, 0, sock, sock + 1, random_name(rng),
                                  random_name(rng)};
      break;
    case 4:
      m.body = meter::MeterConnect{pid, 0, sock, random_name(rng),
                                   random_name(rng)};
      break;
    default:
      m.body = meter::MeterTermProc{pid, 0, 0};
      break;
  }
  m.header.machine = static_cast<std::uint16_t>(rng.uniform(0, 6));
  m.header.cpu_time = rng.uniform(0, 20000);
  m.header.proc_time = rng.uniform(0, 1000);
  return m;
}

std::string random_rules(util::Rng& rng) {
  std::string text;
  const int nrules = static_cast<int>(rng.uniform(1, 4));
  for (int r = 0; r < nrules; ++r) {
    std::string line;
    const int nclauses = static_cast<int>(rng.uniform(1, 3));
    for (int c = 0; c < nclauses; ++c) {
      if (!line.empty()) line += ", ";
      line += kFields[rng.uniform(0, 11)];
      const bool wildcard = rng.bernoulli(0.2);
      // '*' is only legal with '='; '#' discard works with any value.
      line += wildcard ? "=" : kOps[rng.uniform(0, 5)];
      if (rng.bernoulli(0.25)) line += "#";
      if (wildcard) {
        line += "*";
      } else {
        switch (rng.uniform(0, 3)) {
          case 0:  // integer literal, sometimes with leading zeros
            line += (rng.bernoulli(0.1) ? "00" : "") +
                    std::to_string(rng.uniform(0, 2048));
            break;
          case 1:  // a name that may or may not be a field of the type
            line += kFields[rng.uniform(0, 11)];
            break;
          case 2:  // socket-name-like literal
            line += std::to_string(rng.uniform(0, 300000));
            break;
          default:  // non-numeric string literal
            line += "addr-" + std::to_string(rng.uniform(0, 4));
            break;
        }
      }
    }
    text += line + "\n";
  }
  return text;
}

class CompiledEquivalence : public ::testing::TestWithParam<std::uint64_t> {};

INSTANTIATE_TEST_SUITE_P(Seeds, CompiledEquivalence,
                         ::testing::Range<std::uint64_t>(1, 13));

TEST_P(CompiledEquivalence, MatchesInterpretedOnDecodedRecords) {
  util::Rng rng(GetParam() * 977);
  auto desc = Descriptions::parse(default_descriptions_text());
  ASSERT_TRUE(desc.has_value());

  for (int trial = 0; trial < 25; ++trial) {
    const std::string text = random_rules(rng);
    auto templ = Templates::parse(text);
    ASSERT_TRUE(templ.has_value()) << text;
    const auto compiled = CompiledTemplates::compile(*templ, *desc);

    for (int i = 0; i < 40; ++i) {
      auto rec = desc->decode(random_msg(rng).serialize());
      ASSERT_TRUE(rec.has_value());
      const auto cd = compiled.evaluate(*rec);
      ASSERT_TRUE(cd.has_value()) << "decoded record must be compiled\n"
                                  << text;
      const Templates::Decision id = templ->evaluate(*rec);
      ASSERT_EQ(cd->accept, id.accept)
          << "rules:\n" << text << "record: " << trace_line(*rec, nullptr);
      if (cd->accept) {
        // The discard mask must edit the trace line exactly like the
        // interpreted name set.
        ASSERT_EQ(trace_line(*rec, cd->discard), trace_line(*rec, id.discard))
            << "rules:\n" << text;
      }
    }
  }
}

TEST_P(CompiledEquivalence, BytecodeMatchesCompiledAndInterpretedOnViews) {
  // Three-way equivalence on the zero-copy path: for the same wire bytes,
  // bytecode(view) == compiled(view), and both agree with the interpreted
  // evaluator on the decoded record — accept bit and discard-edited trace
  // line alike.
  util::Rng rng(GetParam() * 271 + 3);
  auto desc = Descriptions::parse(default_descriptions_text());
  ASSERT_TRUE(desc.has_value());

  for (int trial = 0; trial < 15; ++trial) {
    const std::string text = random_rules(rng);
    auto templ = Templates::parse(text);
    ASSERT_TRUE(templ.has_value()) << text;
    const auto compiled = CompiledTemplates::compile(*templ, *desc);
    FilterBytecode bytecode = FilterBytecode::lower(compiled);

    for (int i = 0; i < 40; ++i) {
      const util::Bytes wire = random_msg(rng).serialize();
      const std::uint32_t size = static_cast<std::uint32_t>(wire.size());
      auto v = make_record_view(wire.data(), size);
      ASSERT_TRUE(v.has_value());
      const auto cv = compiled.evaluate(*v);
      const auto bv = bytecode.evaluate(*v);
      ASSERT_EQ(cv.has_value(), bv.has_value()) << text;
      if (!cv) continue;
      ASSERT_EQ(cv->accept, bv->accept)
          << "rules:\n" << text << "record: " << random_msg(rng).pretty();
      auto rec = desc->decode(wire);
      ASSERT_TRUE(rec.has_value());
      const Templates::Decision id = templ->evaluate(*rec);
      ASSERT_EQ(bv->accept, id.accept) << "rules:\n" << text;
      if (bv->accept) {
        ASSERT_EQ(trace_line(*rec, bv->discard), trace_line(*rec, id.discard))
            << "rules:\n" << text;
        ASSERT_EQ(trace_line(*rec, bv->discard), trace_line(*rec, cv->discard))
            << "rules:\n" << text;
      }
    }
  }
}

TEST_P(CompiledEquivalence, BytecodeStaysEquivalentAcrossAdaptiveReorder) {
  // Feed far more records of one type than the learn window so the
  // program regenerates with reordered clauses; decisions and discard
  // masks must be identical on every record before and after.
  util::Rng rng(GetParam() * 8837 + 11);
  auto desc = Descriptions::parse(default_descriptions_text());
  ASSERT_TRUE(desc.has_value());

  // Multi-clause rules over one hot type so fail counts accumulate
  // unevenly and the reorder actually permutes something.
  const std::string text =
      "type=1, msgLength>1024, pid<15, machine=2\n"
      "type=1, pid>=15, msgLength<=64\n"
      "machine<3, type=1, sock>2\n";
  auto templ = Templates::parse(text);
  ASSERT_TRUE(templ.has_value());
  const auto compiled = CompiledTemplates::compile(*templ, *desc);
  FilterBytecode bytecode = FilterBytecode::lower(compiled);

  for (int i = 0; i < 1200; ++i) {
    meter::MeterMsg m;
    m.body = meter::MeterSend{
        static_cast<meter::Pid>(rng.uniform(1, 30)), 0,
        static_cast<meter::SocketId>(rng.uniform(0, 8)),
        static_cast<std::uint32_t>(rng.uniform(0, 2048)), random_name(rng)};
    m.header.machine = static_cast<std::uint16_t>(rng.uniform(0, 6));
    m.header.cpu_time = rng.uniform(0, 20000);
    const util::Bytes wire = m.serialize();
    auto v = make_record_view(wire.data(), static_cast<std::uint32_t>(wire.size()));
    ASSERT_TRUE(v.has_value());
    const auto cv = compiled.evaluate(*v);
    const auto bv = bytecode.evaluate(*v);
    ASSERT_TRUE(cv.has_value());
    ASSERT_TRUE(bv.has_value());
    ASSERT_EQ(cv->accept, bv->accept) << "at record " << i;
    if (cv->accept) {
      auto rec = desc->decode(wire);
      ASSERT_TRUE(rec.has_value());
      ASSERT_EQ(trace_line(*rec, cv->discard), trace_line(*rec, bv->discard))
          << "at record " << i;
    }
  }
  // The warmup was long enough that the one-shot reorder actually fired.
  EXPECT_GT(bytecode.reorders(), 0u);
  EXPECT_GT(bytecode.ops_executed(), 1200u);
}

TEST_P(CompiledEquivalence, EmptyRuleSetAgrees) {
  util::Rng rng(GetParam() * 31 + 7);
  auto desc = Descriptions::parse(default_descriptions_text());
  ASSERT_TRUE(desc.has_value());
  const auto compiled = CompiledTemplates::compile(Templates{}, *desc);
  Templates empty;
  for (int i = 0; i < 50; ++i) {
    auto rec = desc->decode(random_msg(rng).serialize());
    ASSERT_TRUE(rec.has_value());
    const auto cd = compiled.evaluate(*rec);
    ASSERT_TRUE(cd.has_value());
    EXPECT_TRUE(cd->accept);
    EXPECT_EQ(cd->accept, empty.evaluate(*rec).accept);
    EXPECT_EQ(trace_line(*rec, cd->discard), trace_line(*rec, empty.evaluate(*rec).discard));
  }
}

}  // namespace
}  // namespace dpm::filter
