// select() semantics: readability across socket kinds, timeouts, child
// events — the syscall the monitor's own daemons and filters rely on.
#include <gtest/gtest.h>

#include "kernel/syscalls.h"
#include "kernel/world.h"
#include "testing.h"

namespace dpm::kernel {
namespace {

class SelectTest : public ::testing::Test {
 protected:
  SelectTest() : world_(dpm::testing::quick_config()) {
    machines_ = dpm::testing::add_machines(world_, {"red"});
    world_.add_account_everywhere(100);
  }
  World world_;
  std::vector<MachineId> machines_;
};

TEST_F(SelectTest, TimesOutWhenNothingReady) {
  bool timed_out = false;
  std::int64_t waited = 0;
  (void)world_.spawn(machines_[0], "p", 100, [&](Sys& sys) {
    auto fd = sys.socket(SockDomain::internet, SockType::dgram);
    (void)sys.bind_port(*fd, 6001);
    const auto t0 = sys.clock_us();
    auto sel = sys.select({*fd}, false, util::msec(50));
    ASSERT_TRUE(sel.ok());
    timed_out = sel->timed_out;
    waited = sys.clock_us() - t0;
  });
  world_.run();
  EXPECT_TRUE(timed_out);
  EXPECT_GE(waited, 45000);
}

TEST_F(SelectTest, WakesOnDatagramArrival) {
  bool readable = false;
  (void)world_.spawn(machines_[0], "rx", 100, [&](Sys& sys) {
    auto fd = sys.socket(SockDomain::internet, SockType::dgram);
    (void)sys.bind_port(*fd, 6002);
    auto sel = sys.select({*fd}, false, util::sec(5));
    ASSERT_TRUE(sel.ok());
    readable = !sel->readable.empty() && !sel->timed_out;
  });
  (void)world_.spawn(machines_[0], "tx", 100, [&](Sys& sys) {
    sys.sleep(util::msec(20));
    auto addr = sys.resolve("red", 6002);
    auto fd = sys.socket(SockDomain::internet, SockType::dgram);
    ASSERT_TRUE(sys.sendto(*fd, util::to_bytes("ping"), *addr).ok());
  });
  world_.run();
  EXPECT_TRUE(readable);
}

TEST_F(SelectTest, ListenerReadableWhenConnectionPending) {
  bool listener_ready = false;
  (void)world_.spawn(machines_[0], "srv", 100, [&](Sys& sys) {
    auto ls = sys.socket(SockDomain::internet, SockType::stream);
    (void)sys.bind_port(*ls, 6003);
    (void)sys.listen(*ls, 4);
    auto sel = sys.select({*ls}, false, util::sec(5));
    ASSERT_TRUE(sel.ok());
    listener_ready = !sel->readable.empty();
    if (listener_ready) ASSERT_TRUE(sys.accept(*ls).ok());
  });
  (void)world_.spawn(machines_[0], "cli", 100, [&](Sys& sys) {
    sys.sleep(util::msec(5));
    auto addr = sys.resolve("red", 6003);
    auto fd = sys.socket(SockDomain::internet, SockType::stream);
    ASSERT_TRUE(sys.connect(*fd, *addr).ok());
  });
  world_.run();
  EXPECT_TRUE(listener_ready);
}

TEST_F(SelectTest, ChildEventWakesSelect) {
  bool got_child_event = false;
  (void)world_.spawn(machines_[0], "parent", 100, [&](Sys& sys) {
    auto fd = sys.socket(SockDomain::internet, SockType::dgram);
    (void)sys.bind_port(*fd, 6004);
    auto child = sys.fork([](Sys& csys) {
      csys.sleep(util::msec(30));
      csys.exit(0);
    });
    ASSERT_TRUE(child.ok());
    auto sel = sys.select({*fd}, /*child_events=*/true, util::sec(5));
    ASSERT_TRUE(sel.ok());
    got_child_event = sel->child_event;
  });
  world_.run();
  EXPECT_TRUE(got_child_event);
}

TEST_F(SelectTest, MultipleFdsReportOnlyReadyOnes) {
  std::vector<Fd> ready_fds;
  Fd quiet_fd = -1, busy_fd = -1;
  (void)world_.spawn(machines_[0], "rx", 100, [&](Sys& sys) {
    auto a = sys.socket(SockDomain::internet, SockType::dgram);
    (void)sys.bind_port(*a, 6005);
    auto b = sys.socket(SockDomain::internet, SockType::dgram);
    (void)sys.bind_port(*b, 6006);
    quiet_fd = *a;
    busy_fd = *b;
    auto sel = sys.select({*a, *b}, false, util::sec(5));
    ASSERT_TRUE(sel.ok());
    ready_fds = sel->readable;
  });
  (void)world_.spawn(machines_[0], "tx", 100, [&](Sys& sys) {
    sys.sleep(util::msec(10));
    auto addr = sys.resolve("red", 6006);
    auto fd = sys.socket(SockDomain::internet, SockType::dgram);
    ASSERT_TRUE(sys.sendto(*fd, util::to_bytes("x"), *addr).ok());
  });
  world_.run();
  ASSERT_EQ(ready_fds.size(), 1u);
  EXPECT_EQ(ready_fds[0], busy_fd);
  EXPECT_NE(ready_fds[0], quiet_fd);
}

TEST_F(SelectTest, BadFdIsError) {
  util::Err result = util::Err::ok;
  (void)world_.spawn(machines_[0], "p", 100, [&](Sys& sys) {
    result = sys.select({55}, false, util::msec(1)).error();
  });
  world_.run();
  EXPECT_EQ(result, util::Err::ebadf);
}

TEST_F(SelectTest, ZeroTimeoutPolls) {
  bool timed_out = false;
  std::int64_t elapsed = -1;
  (void)world_.spawn(machines_[0], "p", 100, [&](Sys& sys) {
    auto fd = sys.socket(SockDomain::internet, SockType::dgram);
    (void)sys.bind_port(*fd, 6007);
    const auto t0 = sys.clock_us();
    auto sel = sys.select({*fd}, false, util::Duration{0});
    ASSERT_TRUE(sel.ok());
    timed_out = sel->timed_out;
    elapsed = sys.clock_us() - t0;
  });
  world_.run();
  EXPECT_TRUE(timed_out);
  EXPECT_LT(elapsed, 5000);  // effectively immediate
}

}  // namespace
}  // namespace dpm::kernel
