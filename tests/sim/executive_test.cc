#include "sim/executive.h"

#include <gtest/gtest.h>

#include <vector>

namespace dpm::sim {
namespace {

using util::TimePoint;
using util::usec;

TEST(Executive, EventsAdvanceTime) {
  Executive exec;
  std::vector<std::int64_t> at;
  exec.schedule_after(usec(10), [&] { at.push_back(util::count_us(exec.now())); });
  exec.schedule_after(usec(5), [&] { at.push_back(util::count_us(exec.now())); });
  exec.run();
  EXPECT_EQ(at, (std::vector<std::int64_t>{5, 10}));
  EXPECT_EQ(util::count_us(exec.now()), 10);
}

TEST(Executive, TaskRunsAndFinishes) {
  Executive exec;
  bool ran = false;
  const TaskId id = exec.spawn("t", [&] { ran = true; });
  exec.run();
  EXPECT_TRUE(ran);
  EXPECT_TRUE(exec.task_finished(id));
  EXPECT_EQ(exec.live_tasks(), 0u);
}

TEST(Executive, SleepAdvancesSimTime) {
  Executive exec;
  std::int64_t woke_at = -1;
  exec.spawn("sleeper", [&] {
    exec.sleep_for(usec(250));
    woke_at = util::count_us(exec.now());
  });
  exec.run();
  EXPECT_EQ(woke_at, 250);
}

TEST(Executive, ParkAndWake) {
  Executive exec;
  int stage = 0;
  TaskId waiter = 0;
  waiter = exec.spawn("waiter", [&] {
    stage = 1;
    exec.park_current();
    stage = 2;
  });
  exec.run();
  EXPECT_EQ(stage, 1);  // parked
  exec.make_runnable(waiter);
  exec.run();
  EXPECT_EQ(stage, 2);
}

TEST(Executive, WakePendingWhileRunningIsNotLost) {
  Executive exec;
  int stage = 0;
  TaskId id = exec.spawn("self", [&] {
    // A wake arrives while we are running; the next park must consume it
    // instead of blocking.
    exec.make_runnable(exec.current_task());
    exec.park_current();
    stage = 1;
  });
  exec.run();
  EXPECT_EQ(stage, 1);
  EXPECT_TRUE(exec.task_finished(id));
}

TEST(Executive, TwoTasksInterleaveDeterministically) {
  Executive exec;
  std::vector<int> order;
  exec.spawn("a", [&] {
    order.push_back(1);
    exec.sleep_for(usec(10));
    order.push_back(3);
  });
  exec.spawn("b", [&] {
    order.push_back(2);
    exec.sleep_for(usec(5));
    order.push_back(4);
  });
  exec.run();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 4, 3}));
}

TEST(Executive, AbortUnwindsParkedTask) {
  Executive exec;
  bool cleaned = false;
  struct Guard {
    bool* flag;
    ~Guard() { *flag = true; }
  };
  const TaskId id = exec.spawn("victim", [&] {
    Guard g{&cleaned};
    exec.park_current();  // never woken normally
  });
  exec.run();
  EXPECT_FALSE(cleaned);
  exec.abort_task(id);
  exec.run();
  EXPECT_TRUE(cleaned);
  EXPECT_TRUE(exec.task_finished(id));
}

TEST(Executive, RunUntilStopsAtBoundary) {
  Executive exec;
  int fired = 0;
  exec.schedule_after(usec(10), [&] { ++fired; });
  exec.schedule_after(usec(20), [&] { ++fired; });
  exec.run_until(TimePoint{} + usec(15));
  EXPECT_EQ(fired, 1);
  EXPECT_EQ(util::count_us(exec.now()), 15);
  exec.run();
  EXPECT_EQ(fired, 2);
}

TEST(Executive, DestructorAbortsLiveTasks) {
  bool cleaned = false;
  struct Guard {
    bool* flag;
    ~Guard() { *flag = true; }
  };
  {
    Executive exec;
    exec.spawn("stuck", [&exec, &cleaned] {
      Guard g{&cleaned};
      exec.park_current();
    });
    exec.run();
    EXPECT_FALSE(cleaned);
  }
  EXPECT_TRUE(cleaned);
}

TEST(Executive, MakeRunnableIdempotent) {
  Executive exec;
  int wakes = 0;
  TaskId id = exec.spawn("w", [&] {
    exec.park_current();
    ++wakes;
  });
  exec.run();
  exec.make_runnable(id);
  exec.make_runnable(id);  // double wake: only one resume happens
  exec.run();
  EXPECT_EQ(wakes, 1);
  EXPECT_TRUE(exec.task_finished(id));
}

TEST(Executive, ManyTasksDrainCleanly) {
  Executive exec;
  int done = 0;
  for (int i = 0; i < 100; ++i) {
    exec.spawn("n", [&exec, &done, i] {
      exec.sleep_for(usec(i % 7));
      ++done;
    });
  }
  exec.run();
  EXPECT_EQ(done, 100);
}

}  // namespace
}  // namespace dpm::sim
