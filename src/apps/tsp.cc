// Distributed traveling-salesman solver (master/worker branch-and-bound).
//
// The paper's initial experience section cites the Lai & Miller 84 TSP
// case study: "A multiprocess computation was developed and debugged
// using the tool, which led to substantial modifications of the program
// resulting in substantial improvements of its performance." This is that
// computation's analog: a master that hands first-branch subproblems to
// workers over stream connections, sharing the best bound as it improves.
//
// Wire protocol (framed as u32 length + body):
//   master->worker  'H' ncities dist[n*n]     hello
//   master->worker  'W' second_city bound     work item
//   master->worker  'S'                       stop
//   worker->master  'R' cost nodes            result
#include "apps/apps.h"
#include "apps/apps_util.h"
#include "util/bytes.h"
#include "util/rng.h"

#include <algorithm>
#include <deque>

namespace dpm::apps {

using kernel::Fd;
using kernel::SockDomain;
using kernel::SockType;
using kernel::Sys;

namespace {

constexpr std::int64_t kInf = INT64_MAX / 4;

util::SysResult<void> send_blob(Sys& sys, Fd fd, const util::Bytes& body) {
  util::BinaryWriter w;
  w.u32(static_cast<std::uint32_t>(body.size()));
  w.raw(body);
  auto r = sys.send(fd, w.bytes());
  if (!r) return r.error();
  return {};
}

util::SysResult<util::Bytes> recv_blob(Sys& sys, Fd fd) {
  auto head = sys.recv_exact(fd, 4);
  if (!head) return head.error();
  const std::uint32_t n = static_cast<std::uint32_t>((*head)[0]) |
                          static_cast<std::uint32_t>((*head)[1]) << 8 |
                          static_cast<std::uint32_t>((*head)[2]) << 16 |
                          static_cast<std::uint32_t>((*head)[3]) << 24;
  if (n > (1u << 20)) return util::Err::emsgsize;
  return sys.recv_exact(fd, n);
}

std::vector<std::int64_t> make_matrix(std::int64_t n, std::uint64_t seed) {
  util::Rng rng(seed);
  std::vector<std::int64_t> d(static_cast<std::size_t>(n * n), 0);
  for (std::int64_t i = 0; i < n; ++i) {
    for (std::int64_t j = i + 1; j < n; ++j) {
      const std::int64_t w = rng.uniform(10, 99);
      d[static_cast<std::size_t>(i * n + j)] = w;
      d[static_cast<std::size_t>(j * n + i)] = w;
    }
  }
  return d;
}

/// Exhaustive DFS with bound pruning starting 0 -> second; returns the
/// best complete-tour cost found and counts explored nodes.
struct SearchResult {
  std::int64_t best;
  std::int64_t nodes;
};

void dfs(const std::vector<std::int64_t>& d, std::int64_t n,
         std::vector<std::int64_t>& path, std::vector<bool>& used,
         std::int64_t cost, std::int64_t& best, std::int64_t& nodes) {
  ++nodes;
  if (cost >= best) return;  // bound pruning
  if (static_cast<std::int64_t>(path.size()) == n) {
    const std::int64_t total =
        cost + d[static_cast<std::size_t>(path.back() * n + path.front())];
    best = std::min(best, total);
    return;
  }
  const std::int64_t last = path.back();
  for (std::int64_t c = 1; c < n; ++c) {
    if (used[static_cast<std::size_t>(c)]) continue;
    used[static_cast<std::size_t>(c)] = true;
    path.push_back(c);
    dfs(d, n, path, used, cost + d[static_cast<std::size_t>(last * n + c)],
        best, nodes);
    path.pop_back();
    used[static_cast<std::size_t>(c)] = false;
  }
}

SearchResult solve_branch(const std::vector<std::int64_t>& d, std::int64_t n,
                          std::int64_t second, std::int64_t bound) {
  std::vector<std::int64_t> path{0, second};
  std::vector<bool> used(static_cast<std::size_t>(n), false);
  used[0] = used[static_cast<std::size_t>(second)] = true;
  std::int64_t best = bound;
  std::int64_t nodes = 0;
  dfs(d, n, path, used, d[static_cast<std::size_t>(second)], best, nodes);
  return SearchResult{best, nodes};
}

}  // namespace

kernel::ProcessMain make_tsp_master(const std::vector<std::string>& argv) {
  return [argv](Sys& sys) {
    const auto port = static_cast<net::Port>(arg_int(argv, 1, 9000));
    const auto nworkers = arg_int(argv, 2, 2);
    const auto ncities = arg_int(argv, 3, 9);
    const auto seed = static_cast<std::uint64_t>(arg_int(argv, 4, 42));

    auto ls = sys.socket(SockDomain::internet, SockType::stream);
    if (!ls || !sys.bind_port(*ls, port) || !sys.listen(*ls, 16)) sys.exit(1);

    const std::vector<std::int64_t> dist = make_matrix(ncities, seed);

    std::vector<Fd> workers;
    for (std::int64_t i = 0; i < nworkers; ++i) {
      auto conn = sys.accept(*ls);
      if (!conn) sys.exit(1);
      workers.push_back(*conn);
      util::BinaryWriter hello;
      hello.u8('H');
      hello.i64(ncities);
      for (std::int64_t v : dist) hello.i64(v);
      if (!send_blob(sys, *conn, hello.bytes())) sys.exit(1);
    }

    std::deque<std::int64_t> tasks;  // second city of the fixed branch
    for (std::int64_t c = 1; c < ncities; ++c) tasks.push_back(c);

    std::int64_t best = kInf;
    std::int64_t total_nodes = 0;

    auto give_work = [&](Fd fd) -> bool {
      if (tasks.empty()) return false;
      util::BinaryWriter w;
      w.u8('W');
      w.i64(tasks.front());
      w.i64(best);
      tasks.pop_front();
      return send_blob(sys, fd, w.bytes()).ok();
    };

    std::size_t busy = 0;
    for (Fd fd : workers) {
      if (give_work(fd)) ++busy;
    }
    while (busy > 0) {
      auto sel = sys.select(workers, false, std::nullopt);
      if (!sel) break;
      for (Fd fd : sel->readable) {
        auto blob = recv_blob(sys, fd);
        if (!blob) {
          --busy;
          continue;
        }
        util::BinaryReader r(*blob);
        auto tag = r.u8();
        auto cost = r.i64();
        auto nodes = r.i64();
        if (tag && *tag == 'R' && cost && nodes) {
          best = std::min(best, *cost);
          total_nodes += *nodes;
        }
        --busy;
        if (give_work(fd)) ++busy;
      }
    }
    for (Fd fd : workers) {
      util::BinaryWriter w;
      w.u8('S');
      (void)send_blob(sys, fd, w.bytes());
      (void)sys.close(fd);
    }
    (void)sys.print(util::strprintf(
        "tsp: best tour %lld (%lld cities, %lld nodes explored)\n",
        static_cast<long long>(best), static_cast<long long>(ncities),
        static_cast<long long>(total_nodes)));
    sys.exit(0);
  };
}

kernel::ProcessMain make_tsp_worker(const std::vector<std::string>& argv) {
  return [argv](Sys& sys) {
    const std::string host = arg_str(argv, 1, "localhost");
    const auto port = static_cast<net::Port>(arg_int(argv, 2, 9000));
    const auto ns_per_node = arg_int(argv, 3, 2000);

    auto fdr = connect_retry(sys, host, port);
    if (!fdr) sys.exit(1);
    Fd fd = *fdr;

    std::int64_t n = 0;
    std::vector<std::int64_t> dist;
    for (;;) {
      auto blob = recv_blob(sys, fd);
      if (!blob) break;
      util::BinaryReader r(*blob);
      auto tag = r.u8();
      if (!tag) break;
      if (*tag == 'H') {
        auto nc = r.i64();
        if (!nc) break;
        n = *nc;
        dist.resize(static_cast<std::size_t>(n * n));
        bool ok = true;
        for (auto& v : dist) {
          auto x = r.i64();
          if (!x) {
            ok = false;
            break;
          }
          v = *x;
        }
        if (!ok) break;
      } else if (*tag == 'W') {
        auto second = r.i64();
        auto bound = r.i64();
        if (!second || !bound || n == 0) break;
        const SearchResult res = solve_branch(dist, n, *second, *bound);
        // Model the search's CPU consumption in simulated time.
        sys.compute(util::usec(res.nodes * ns_per_node / 1000 + 1));
        util::BinaryWriter w;
        w.u8('R');
        w.i64(res.best);
        w.i64(res.nodes);
        if (!send_blob(sys, fd, w.bytes())) break;
      } else {  // 'S'
        break;
      }
    }
    (void)sys.close(fd);
    sys.exit(0);
  };
}

}  // namespace dpm::apps
