file(REMOVE_RECURSE
  "../bench/bench_filter"
  "../bench/bench_filter.pdb"
  "CMakeFiles/bench_filter.dir/bench_filter.cc.o"
  "CMakeFiles/bench_filter.dir/bench_filter.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_filter.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
