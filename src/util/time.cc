#include "util/time.h"

#include <cstdio>

namespace dpm::util {

std::string format_time(TimePoint t) {
  const std::int64_t us = count_us(t);
  char buf[48];
  std::snprintf(buf, sizeof buf, "%lld.%06llds",
                static_cast<long long>(us / 1000000),
                static_cast<long long>(us < 0 ? -(us % 1000000) : us % 1000000));
  return buf;
}

std::string format_duration(Duration d) {
  const std::int64_t us = d.count();
  char buf[48];
  if (us % 1000 == 0 && us != 0) {
    std::snprintf(buf, sizeof buf, "%lldms", static_cast<long long>(us / 1000));
  } else {
    std::snprintf(buf, sizeof buf, "%lldus", static_cast<long long>(us));
  }
  return buf;
}

}  // namespace dpm::util
