// Kernel metering hooks (§3.2): buffering vs immediate delivery, flush on
// termination, event counts per syscall, M_IMMEDIATE.
#include "kernel/meter_hooks.h"

#include <algorithm>

#include <gtest/gtest.h>

#include "kernel/syscalls.h"
#include "kernel/world.h"
#include "meter/meterflags.h"
#include "meter/metermsgs.h"
#include "testing.h"

namespace dpm::kernel {
namespace {

class HooksTest : public ::testing::Test {
 protected:
  HooksTest() { reset({}); }

  void reset(WorldConfig cfg) {
    world_ = std::make_unique<World>(cfg);
    machines_ = dpm::testing::add_machines(*world_, {"red", "green"});
    world_->add_account_everywhere(100);
  }

  /// Collects raw meter bytes on green:4500 across any number of
  /// connections.
  void spawn_sink() {
    (void)world_->spawn(machines_[1], "sink", 100, [this](Sys& sys) {
      auto ls = sys.socket(SockDomain::internet, SockType::stream);
      (void)sys.bind_port(*ls, 4500);
      (void)sys.listen(*ls, 8);
      std::vector<Fd> conns;
      for (;;) {
        std::vector<Fd> fds = conns;
        fds.push_back(*ls);
        auto sel = sys.select(fds, false, util::sec(30));
        if (!sel.ok() || sel->timed_out) break;
        for (Fd fd : sel->readable) {
          if (fd == *ls) {
            auto c = sys.accept(*ls);
            if (c.ok()) conns.push_back(*c);
            continue;
          }
          auto data = sys.recv(fd, 65536);
          if (!data.ok() || data->empty()) {
            (void)sys.close(fd);
            conns.erase(std::remove(conns.begin(), conns.end(), fd),
                        conns.end());
            continue;
          }
          collected_.insert(collected_.end(), data->begin(), data->end());
        }
      }
    });
  }

  /// Runs `body` as a fully metered process (flags | M_ALL extras).
  void run_metered(meter::Flags flags, std::function<void(Sys&)> body) {
    (void)world_->spawn(machines_[0], "app", 100, [&, flags](Sys& sys) {
      sys.sleep(util::msec(5));
      auto addr = sys.resolve("green", 4500);
      auto ms = sys.socket(SockDomain::internet, SockType::stream);
      ASSERT_TRUE(sys.connect(*ms, *addr).ok());
      ASSERT_TRUE(sys.setmeter(meter::SETMETER_SELF,
                               static_cast<std::int32_t>(flags), *ms)
                      .ok());
      ASSERT_TRUE(sys.close(*ms).ok());
      body(sys);
    });
    world_->run();
  }

  std::vector<meter::MeterMsg> messages() const {
    std::vector<meter::MeterMsg> out;
    std::size_t pos = 0;
    while (auto m = meter::MeterMsg::parse_stream(collected_, pos)) {
      out.push_back(std::move(*m));
    }
    return out;
  }

  std::unique_ptr<World> world_;
  std::vector<MachineId> machines_;
  util::Bytes collected_;
};

TEST_F(HooksTest, EveryEventKindIsEmitted) {
  spawn_sink();
  run_metered(meter::M_ALL, [](Sys& sys) {
    auto pair = sys.socketpair();            // 2x sockcrt + connect + accept
    ASSERT_TRUE(pair.ok());
    ASSERT_TRUE(sys.send(pair->first, "x").ok());       // send
    ASSERT_TRUE(sys.recv(pair->second, 16).ok());       // recvcall + recv
    auto d = sys.dup(pair->first);                      // dup
    ASSERT_TRUE(d.ok());
    ASSERT_TRUE(sys.close(*d).ok());                    // destsock
    auto child = sys.fork([](Sys&) {});                 // fork
    ASSERT_TRUE(child.ok());
    (void)sys.waitchange(true);
  });
  auto msgs = messages();
  std::map<meter::EventType, int> counts;
  for (const auto& m : msgs) ++counts[m.type()];
  EXPECT_EQ(counts[meter::EventType::sockcrt], 2);
  EXPECT_EQ(counts[meter::EventType::connect], 1);
  EXPECT_EQ(counts[meter::EventType::accept], 1);
  EXPECT_EQ(counts[meter::EventType::send], 1);
  EXPECT_GE(counts[meter::EventType::recvcall], 1);
  EXPECT_GE(counts[meter::EventType::recv], 1);
  EXPECT_EQ(counts[meter::EventType::dup], 1);
  EXPECT_GE(counts[meter::EventType::destsock], 1);
  EXPECT_EQ(counts[meter::EventType::fork], 1);
  // Two termprocs: the child inherits metering and its exit is recorded.
  EXPECT_EQ(counts[meter::EventType::termproc], 2);
}

TEST_F(HooksTest, OnlyFlaggedEventsAreRecorded) {
  spawn_sink();
  // §3.2: "one can meter both accepts and connects, or only one of the
  // two or neither".
  run_metered(meter::M_SOCKET, [](Sys& sys) {
    auto pair = sys.socketpair();
    ASSERT_TRUE(pair.ok());
    ASSERT_TRUE(sys.send(pair->first, "x").ok());
    ASSERT_TRUE(sys.recv(pair->second, 16).ok());
  });
  auto msgs = messages();
  ASSERT_EQ(msgs.size(), 2u);  // only the two socket creates
  EXPECT_EQ(msgs[0].type(), meter::EventType::sockcrt);
  EXPECT_EQ(msgs[1].type(), meter::EventType::sockcrt);
}

TEST_F(HooksTest, BufferingReducesFlushes) {
  WorldConfig cfg;
  cfg.meter_buffer_msgs = 8;
  cfg.meter_buffer_bytes = 64 * 1024;
  reset(cfg);
  spawn_sink();
  run_metered(meter::M_SEND, [](Sys& sys) {
    auto pair = sys.socketpair();
    for (int i = 0; i < 32; ++i) (void)sys.send(pair->first, "x");
  });
  const MeterStats stats = world_->meter_stats();
  EXPECT_EQ(stats.events, 32u);  // 32 sends; termproc not flagged
  // 32 events in batches of 8 -> ~4-5 flushes, far fewer than events
  // ("the number of meter messages is considerably smaller", §4.1).
  EXPECT_LE(stats.flushes, 6u);
  EXPECT_GE(stats.flushes, 4u);
}

TEST_F(HooksTest, ByteThresholdAlsoTriggersFlush) {
  WorldConfig cfg;
  cfg.meter_buffer_msgs = 100000;   // never flush by count
  cfg.meter_buffer_bytes = 200;     // ~4 send records
  reset(cfg);
  spawn_sink();
  run_metered(meter::M_SEND, [](Sys& sys) {
    auto pair = sys.socketpair();
    for (int i = 0; i < 20; ++i) (void)sys.send(pair->first, "x");
  });
  const MeterStats stats = world_->meter_stats();
  EXPECT_EQ(stats.events, 20u);
  EXPECT_GE(stats.flushes, 4u);  // size-driven batches
  EXPECT_LE(stats.flushes, 6u);
}

class BufferSweep : public HooksTest,
                    public ::testing::WithParamInterface<std::uint32_t> {};

INSTANTIATE_TEST_SUITE_P(Sizes, BufferSweep,
                         ::testing::Values(1u, 2u, 4u, 8u, 16u, 32u));

TEST_P(BufferSweep, FlushCountMatchesBatchArithmetic) {
  WorldConfig cfg;
  cfg.meter_buffer_msgs = GetParam();
  cfg.meter_buffer_bytes = 1 << 20;
  reset(cfg);
  spawn_sink();
  run_metered(meter::M_SEND, [](Sys& sys) {
    auto pair = sys.socketpair();
    for (int i = 0; i < 64; ++i) (void)sys.send(pair->first, "x");
  });
  const MeterStats stats = world_->meter_stats();
  EXPECT_EQ(stats.events, 64u);
  // ceil(64 / batch) threshold flushes; termproc is not flagged so the
  // exit flush only fires when a partial batch remains.
  const std::uint64_t expected = (64 + GetParam() - 1) / GetParam();
  EXPECT_GE(stats.flushes, expected);
  EXPECT_LE(stats.flushes, expected + 1);
  // Every event arrived at the sink regardless of batching.
  EXPECT_EQ(messages().size(), 64u);
}

TEST_F(HooksTest, ImmediateFlushesEveryEvent) {
  spawn_sink();
  run_metered(meter::M_SEND | meter::M_IMMEDIATE, [](Sys& sys) {
    auto pair = sys.socketpair();
    for (int i = 0; i < 10; ++i) (void)sys.send(pair->first, "x");
  });
  const MeterStats stats = world_->meter_stats();
  EXPECT_EQ(stats.flushes, stats.events);
  EXPECT_EQ(stats.events, 10u);
}

TEST_F(HooksTest, TerminationFlushesPendingMessages) {
  WorldConfig cfg;
  cfg.meter_buffer_msgs = 1000;  // never flush on threshold
  cfg.meter_buffer_bytes = 1 << 20;
  reset(cfg);
  spawn_sink();
  run_metered(meter::M_ALL, [](Sys& sys) {
    auto fd = sys.socket(SockDomain::internet, SockType::dgram);
    (void)sys.close(*fd);
    // exit without any flush trigger: §3.2 "As part of process
    // termination, any unsent messages are forwarded to the filter."
  });
  auto msgs = messages();
  // Four events: the helper's close of its (already-registered) meter
  // descriptor is itself a metered destsock, then sockcrt + destsock for
  // the datagram socket, then the termproc recorded at exit.
  ASSERT_EQ(msgs.size(), 4u);
  EXPECT_EQ(msgs[0].type(), meter::EventType::destsock);
  EXPECT_EQ(msgs[1].type(), meter::EventType::sockcrt);
  EXPECT_EQ(msgs[2].type(), meter::EventType::destsock);
  EXPECT_EQ(msgs[3].type(), meter::EventType::termproc);
}

TEST_F(HooksTest, HeaderCarriesLocalClockAndQuantizedCpu) {
  spawn_sink();
  run_metered(meter::M_SOCKET | meter::M_IMMEDIATE, [](Sys& sys) {
    sys.compute(util::msec(25));
    (void)sys.socket(SockDomain::internet, SockType::dgram);
  });
  auto msgs = messages();
  ASSERT_EQ(msgs.size(), 1u);
  // procTime is quantized to 10ms (§4.1) and reflects ~25ms of CPU.
  EXPECT_EQ(msgs[0].header.proc_time % 10000, 0);
  EXPECT_EQ(msgs[0].header.proc_time, 20000);
  // cpuTime is a local clock reading near the simulated instant.
  EXPECT_GT(msgs[0].header.cpu_time, 0);
}

TEST_F(HooksTest, AcceptRecordMatchesFig41) {
  spawn_sink();
  std::vector<meter::MeterMsg> done;
  run_metered(meter::M_ACCEPT | meter::M_CONNECT | meter::M_IMMEDIATE,
              [](Sys& sys) {
                auto ls = sys.socket(SockDomain::internet, SockType::stream);
                auto bound = sys.bind_port(*ls, 4700);
                ASSERT_TRUE(bound.ok());
                (void)sys.listen(*ls, 1);
                auto child = sys.fork([](Sys& csys) {
                  auto addr = csys.resolve("red", 4700);
                  auto fd =
                      csys.socket(SockDomain::internet, SockType::stream);
                  ASSERT_TRUE(csys.connect(*fd, *addr).ok());
                });
                ASSERT_TRUE(child.ok());
                ASSERT_TRUE(sys.accept(*ls).ok());
                (void)sys.waitchange(true);
              });
  auto msgs = messages();
  const meter::MeterAccept* accept = nullptr;
  const meter::MeterConnect* connect = nullptr;
  for (const auto& m : msgs) {
    if (auto* a = std::get_if<meter::MeterAccept>(&m.body)) accept = a;
    if (auto* c = std::get_if<meter::MeterConnect>(&m.body)) connect = c;
  }
  ASSERT_NE(accept, nullptr);
  ASSERT_NE(connect, nullptr);
  // The accept names mirror the connect names (how analysis pairs them).
  EXPECT_EQ(accept->sock_name, connect->peer_name);
  EXPECT_EQ(accept->peer_name, connect->sock_name);
  EXPECT_NE(accept->new_sock, accept->sock);
}

TEST_F(HooksTest, DroppedBatchesAreCountedSeparately) {
  // A flush with no meter socket loses the batch (Appendix C): nothing is
  // sent, so no CPU is booked and nothing is counted as delivered — the
  // loss must land in the dropped_* counters, not in flushes/bytes.
  auto pid = world_->spawn(machines_[0], "idle", 100,
                           [](Sys& sys) { sys.sleep(util::sec(1)); });
  ASSERT_TRUE(pid.ok());
  world_->run_for(util::msec(100));
  Process* p = world_->find_process(machines_[0], *pid);
  ASSERT_NE(p, nullptr);
  ASSERT_EQ(p->meter_sock, 0u);

  // Pending bytes with no socket: possible when the socket is torn down
  // out from under the process (Appendix C loss scenarios).
  p->meter_pending.assign(64, 0x5a);
  p->meter_pending_count = 2;
  const util::Duration cpu_before = p->cpu_used;
  meter_flush(*world_, *p);

  const MeterStats stats = world_->meter_stats();
  EXPECT_EQ(stats.flushes, 0u);
  EXPECT_EQ(stats.bytes, 0u);
  EXPECT_EQ(stats.dropped_batches, 1u);
  EXPECT_EQ(stats.dropped_bytes, 64u);
  EXPECT_EQ(p->meter_flushes, 0u);
  EXPECT_EQ(p->meter_bytes, 0u);
  EXPECT_EQ(p->meter_dropped_batches, 1u);
  EXPECT_EQ(p->meter_dropped_bytes, 64u);
  EXPECT_EQ(p->cpu_used, cpu_before);  // the lost batch costs nothing
  EXPECT_TRUE(p->meter_pending.empty());
  world_->run();
}

TEST_F(HooksTest, MeteringCostsCpuTime) {
  // Monitoring is cheap but not free (§2.2): the metered run charges more
  // CPU to the machine than the unmetered run.
  auto measure = [&](bool metered) {
    reset({});
    spawn_sink();
    Pid pid = 0;
    if (metered) {
      (void)world_->spawn(machines_[0], "app", 100, [&](Sys& sys) {
        sys.sleep(util::msec(5));
        auto addr = sys.resolve("green", 4500);
        auto ms = sys.socket(SockDomain::internet, SockType::stream);
        (void)sys.connect(*ms, *addr);
        (void)sys.setmeter(meter::SETMETER_SELF,
                           static_cast<std::int32_t>(meter::M_ALL), *ms);
        (void)sys.close(*ms);
        auto pair = sys.socketpair();
        for (int i = 0; i < 100; ++i) (void)sys.send(pair->first, "x");
        pid = sys.getpid();
      });
    } else {
      (void)world_->spawn(machines_[0], "app", 100, [&](Sys& sys) {
        sys.sleep(util::msec(5));
        auto pair = sys.socketpair();
        for (int i = 0; i < 100; ++i) (void)sys.send(pair->first, "x");
        pid = sys.getpid();
      });
    }
    world_->run();
    Process* p = world_->find_process(machines_[0], pid);
    return p ? p->cpu_used.count() : 0;
  };
  const auto unmetered = measure(false);
  const auto metered = measure(true);
  EXPECT_GT(metered, unmetered);
}

}  // namespace
}  // namespace dpm::kernel
