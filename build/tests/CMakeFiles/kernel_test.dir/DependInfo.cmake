
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/kernel/cpu_test.cc" "tests/CMakeFiles/kernel_test.dir/kernel/cpu_test.cc.o" "gcc" "tests/CMakeFiles/kernel_test.dir/kernel/cpu_test.cc.o.d"
  "/root/repo/tests/kernel/file_test.cc" "tests/CMakeFiles/kernel_test.dir/kernel/file_test.cc.o" "gcc" "tests/CMakeFiles/kernel_test.dir/kernel/file_test.cc.o.d"
  "/root/repo/tests/kernel/limits_test.cc" "tests/CMakeFiles/kernel_test.dir/kernel/limits_test.cc.o" "gcc" "tests/CMakeFiles/kernel_test.dir/kernel/limits_test.cc.o.d"
  "/root/repo/tests/kernel/process_test.cc" "tests/CMakeFiles/kernel_test.dir/kernel/process_test.cc.o" "gcc" "tests/CMakeFiles/kernel_test.dir/kernel/process_test.cc.o.d"
  "/root/repo/tests/kernel/select_test.cc" "tests/CMakeFiles/kernel_test.dir/kernel/select_test.cc.o" "gcc" "tests/CMakeFiles/kernel_test.dir/kernel/select_test.cc.o.d"
  "/root/repo/tests/kernel/setmeter_test.cc" "tests/CMakeFiles/kernel_test.dir/kernel/setmeter_test.cc.o" "gcc" "tests/CMakeFiles/kernel_test.dir/kernel/setmeter_test.cc.o.d"
  "/root/repo/tests/kernel/socket_test.cc" "tests/CMakeFiles/kernel_test.dir/kernel/socket_test.cc.o" "gcc" "tests/CMakeFiles/kernel_test.dir/kernel/socket_test.cc.o.d"
  "/root/repo/tests/kernel/variants_test.cc" "tests/CMakeFiles/kernel_test.dir/kernel/variants_test.cc.o" "gcc" "tests/CMakeFiles/kernel_test.dir/kernel/variants_test.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/dpm_control.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/dpm_daemon.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/dpm_analysis.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/dpm_filter.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/dpm_apps.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/dpm_kernel.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/dpm_net.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/dpm_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/dpm_meter.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/dpm_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
