// The network fabric: delayed delivery of packets between machines.
//
// The fabric models the paper's communication substrate at the level the
// monitor observes it (§2.1): message delivery with finite, non-
// deterministic delay. Stream traffic is delivered reliably and in order
// per channel (the underlying protocol's acks/retransmits are below the
// abstraction, as the paper argues they should be); datagram traffic may
// be dropped or reordered according to the network's configuration —
// "delivery ... is not guaranteed, though it is likely" (§3.1) — except
// within a single machine, where datagrams are reliable (§3.5.2).
#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <memory>

#include "net/address.h"
#include "obs/registry.h"
#include "sim/executive.h"
#include "util/rng.h"
#include "util/time.h"

namespace dpm::net {

struct NetworkConfig {
  util::Duration base_latency = util::usec(1000);  // per-packet propagation
  util::Duration per_kb = util::usec(100);         // transmission time per KiB
  util::Duration jitter_max = util::usec(200);     // uniform [0, jitter_max)
  double dgram_loss = 0.0;                         // datagram drop probability
};

struct LocalConfig {
  util::Duration base_latency = util::usec(50);  // same-machine IPC hop
  util::Duration per_kb = util::usec(10);
};

/// Statistics the fabric keeps for experiments (E5). This is a *view*
/// computed from registry counters (net.packets_sent, net.packets_dropped,
/// net.bytes_sent, net.bytes_dropped) — the registry is the one
/// accounting path. Dropped packets count under bytes_dropped, never
/// bytes_sent.
struct FabricStats {
  std::uint64_t packets_sent = 0;
  std::uint64_t packets_dropped = 0;
  std::uint64_t bytes_sent = 0;
  std::uint64_t bytes_dropped = 0;
};

class Fabric {
 public:
  /// `obs` is the metrics registry the fabric accounts through; when null
  /// (standalone tests, benchmarks) the fabric owns a private one, so the
  /// accounting path is identical either way.
  explicit Fabric(sim::Executive& exec, std::uint64_t seed,
                  obs::Registry* obs = nullptr);
  ~Fabric();

  /// Configures a network; unknown networks use the default config.
  void configure_network(NetworkId net, NetworkConfig cfg);
  void configure_local(LocalConfig cfg) { local_ = cfg; }

  /// Delivers `deliver` after the latency for `size_bytes` over `net`.
  /// `channel` != 0 requests in-order delivery relative to other packets on
  /// the same channel (streams). `droppable` packets are subject to the
  /// network's datagram loss (dropped packets never deliver).
  /// `src == dst` is a same-machine hop: local config, no loss, low delay.
  void send(NetworkId net, MachineId src, MachineId dst, std::uint64_t channel,
            bool droppable, std::size_t size_bytes,
            std::function<void()> deliver);

  // ---- fault injection (driven by net::FaultInjector) ---------------------
  // Fault state lives behind one null-until-first-injection pointer, so the
  // no-fault hot path pays a single branch.
  /// Drops droppable packets on `net` with probability >= `loss` until `until`.
  void fault_drop_burst(NetworkId net, double loss, util::TimePoint until);
  /// Adds `extra` latency to every remote delivery on `net` until `until`.
  void fault_latency_spike(NetworkId net, util::Duration extra,
                           util::TimePoint until);
  /// Partitions machines a<->b until `heal_at`: droppable packets between
  /// them are lost; reliable traffic is held back until the heal time (the
  /// stream protocol's retransmits are below the abstraction).
  void fault_partition(MachineId a, MachineId b, util::TimePoint heal_at);
  /// True while an un-healed partition separates a and b.
  bool partitioned(MachineId a, MachineId b) const;

  /// Allocates a fresh ordered-channel id.
  std::uint64_t new_channel() { return next_channel_++; }

  /// Current stats view (registry counters minus the reset baseline).
  FabricStats stats() const;
  /// Rebases the view at the current counter values; the registry's
  /// counters stay monotonic.
  void reset_stats() { base_ = raw_stats(); }

  obs::Registry& obs() { return *obs_; }

 private:
  struct FaultState;

  const NetworkConfig& config_for(NetworkId net) const;
  FabricStats raw_stats() const;
  FaultState& faults();

  sim::Executive& exec_;
  util::Rng rng_;
  NetworkConfig default_net_{};
  LocalConfig local_{};
  std::map<NetworkId, NetworkConfig> nets_;
  std::map<std::uint64_t, util::TimePoint> channel_horizon_;
  std::uint64_t next_channel_ = 1;

  std::unique_ptr<obs::Registry> own_obs_;  // set when constructed without one
  obs::Registry* obs_ = nullptr;
  obs::Counter* packets_sent_ = nullptr;
  obs::Counter* packets_dropped_ = nullptr;
  obs::Counter* bytes_sent_ = nullptr;
  obs::Counter* bytes_remote_ = nullptr;
  obs::Counter* bytes_dropped_ = nullptr;
  obs::Gauge* in_flight_ = nullptr;
  obs::Histogram* delivery_us_ = nullptr;
  FabricStats base_;  // reset_stats() baseline
  std::unique_ptr<FaultState> faults_;  // null until the first injection
};

}  // namespace dpm::net
