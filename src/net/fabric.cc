#include "net/fabric.h"

#include <algorithm>
#include <utility>

namespace dpm::net {
namespace {

std::pair<MachineId, MachineId> norm_pair(MachineId a, MachineId b) {
  return a < b ? std::pair{a, b} : std::pair{b, a};
}

}  // namespace

/// Active fault windows. Expired entries are pruned lazily on lookup.
struct Fabric::FaultState {
  struct Burst {
    double loss = 0;
    util::TimePoint until{};
  };
  struct Spike {
    util::Duration extra{};
    util::TimePoint until{};
  };
  std::map<NetworkId, Burst> bursts;
  std::map<NetworkId, Spike> spikes;
  std::map<std::pair<MachineId, MachineId>, util::TimePoint> partitions;
};

Fabric::Fabric(sim::Executive& exec, std::uint64_t seed, obs::Registry* obs)
    : exec_(exec), rng_(seed) {
  if (!obs) {
    own_obs_ = std::make_unique<obs::Registry>();
    obs = own_obs_.get();
    obs->set_clock([this] { return exec_.now(); });
  }
  obs_ = obs;
  packets_sent_ = &obs_->counter("net.packets_sent");
  packets_dropped_ = &obs_->counter("net.packets_dropped");
  bytes_sent_ = &obs_->counter("net.bytes_sent");
  bytes_remote_ = &obs_->counter("net.bytes_remote");
  bytes_dropped_ = &obs_->counter("net.bytes_dropped");
  in_flight_ = &obs_->gauge("net.in_flight");
  delivery_us_ = &obs_->histogram("net.delivery_us");
}

Fabric::~Fabric() = default;

FabricStats Fabric::raw_stats() const {
  return FabricStats{packets_sent_->value(), packets_dropped_->value(),
                     bytes_sent_->value(), bytes_dropped_->value()};
}

FabricStats Fabric::stats() const {
  const FabricStats raw = raw_stats();
  return FabricStats{raw.packets_sent - base_.packets_sent,
                     raw.packets_dropped - base_.packets_dropped,
                     raw.bytes_sent - base_.bytes_sent,
                     raw.bytes_dropped - base_.bytes_dropped};
}

void Fabric::configure_network(NetworkId net, NetworkConfig cfg) {
  nets_[net] = cfg;
}

const NetworkConfig& Fabric::config_for(NetworkId net) const {
  auto it = nets_.find(net);
  return it == nets_.end() ? default_net_ : it->second;
}

Fabric::FaultState& Fabric::faults() {
  if (!faults_) faults_ = std::make_unique<FaultState>();
  return *faults_;
}

void Fabric::fault_drop_burst(NetworkId net, double loss,
                              util::TimePoint until) {
  faults().bursts[net] = FaultState::Burst{loss, until};
}

void Fabric::fault_latency_spike(NetworkId net, util::Duration extra,
                                 util::TimePoint until) {
  faults().spikes[net] = FaultState::Spike{extra, until};
}

void Fabric::fault_partition(MachineId a, MachineId b,
                             util::TimePoint heal_at) {
  auto& heal = faults().partitions[norm_pair(a, b)];
  if (heal_at > heal) heal = heal_at;
}

bool Fabric::partitioned(MachineId a, MachineId b) const {
  if (!faults_ || a == b) return false;
  auto it = faults_->partitions.find(norm_pair(a, b));
  return it != faults_->partitions.end() && exec_.now() < it->second;
}

void Fabric::send(NetworkId net, MachineId src, MachineId dst,
                  std::uint64_t channel, bool droppable,
                  std::size_t size_bytes, std::function<void()> deliver) {
  packets_sent_->add(1);
  const bool local = src == dst;

  util::Duration delay;
  util::TimePoint floor{};  // partition heal time holds reliable traffic back
  if (local) {
    delay = local_.base_latency +
            util::usec(local_.per_kb.count() * static_cast<std::int64_t>(size_bytes) / 1024);
  } else {
    const NetworkConfig& cfg = config_for(net);
    double loss = cfg.dgram_loss;
    if (faults_) {
      auto pit = faults_->partitions.find(norm_pair(src, dst));
      if (pit != faults_->partitions.end()) {
        if (exec_.now() < pit->second) {
          if (droppable) loss = 1.0;
          else floor = pit->second;
        } else {
          faults_->partitions.erase(pit);  // healed; prune
        }
      }
      if (droppable) {
        auto bit = faults_->bursts.find(net);
        if (bit != faults_->bursts.end() && exec_.now() < bit->second.until) {
          loss = std::max(loss, bit->second.loss);
        }
      }
    }
    if (droppable && rng_.bernoulli(loss)) {
      packets_dropped_->add(1);
      bytes_dropped_->add(size_bytes);
      return;
    }
    delay = cfg.base_latency +
            util::usec(cfg.per_kb.count() * static_cast<std::int64_t>(size_bytes) / 1024);
    if (cfg.jitter_max.count() > 0) {
      delay += util::usec(rng_.uniform(0, cfg.jitter_max.count() - 1));
    }
    if (faults_) {
      auto sit = faults_->spikes.find(net);
      if (sit != faults_->spikes.end() && exec_.now() < sit->second.until) {
        delay += sit->second.extra;
      }
    }
  }
  bytes_sent_->add(size_bytes);
  // Cross-fabric traffic only: the number the fan-in tree exists to shrink.
  if (!local) bytes_remote_->add(size_bytes);

  util::TimePoint arrive = exec_.now() + delay;
  if (arrive < floor + delay) arrive = floor + delay;  // resume after heal
  if (channel != 0) {
    // In-order channels never deliver before an earlier packet on the same
    // channel: push the arrival time past the channel horizon.
    auto& horizon = channel_horizon_[channel];
    if (arrive < horizon) arrive = horizon;
    horizon = arrive;
  }
  delivery_us_->record(util::count_us(arrive - exec_.now()));
  in_flight_->add(1);
  exec_.schedule_at(arrive, [this, d = std::move(deliver)] {
    in_flight_->sub(1);
    d();
  });
}

}  // namespace dpm::net
