// Shared synthetic workloads and timing helpers for the benchmarks.
//
// The three pipeline workloads (send/recv-heavy, accept/connect-heavy,
// mixed) and the filter rules were born in bench_pipeline.cc; bench_live
// measures streaming analysis over the very same record streams, so they
// live here where both binaries (and any future bench) share one
// definition — a speedup or regression then means the path changed, not
// the workload.
#pragma once

#include <chrono>
#include <cstdint>
#include <vector>

#include "bench_util.h"
#include "filter/filter_program.h"
#include "meter/metermsgs.h"
#include "util/bytes.h"

namespace dpm::bench {

// ---- synthetic workloads --------------------------------------------------

enum class Workload { sendrecv, acceptconnect, mixed };

inline const char* workload_name(Workload w) {
  switch (w) {
    case Workload::sendrecv: return "sendrecv";
    case Workload::acceptconnect: return "acceptconnect";
    case Workload::mixed: return "mixed";
  }
  return "?";
}

inline constexpr Workload kWorkloads[] = {
    Workload::sendrecv, Workload::acceptconnect, Workload::mixed};

/// Messages of one workload, header fields varied the way a live meter
/// varies them. Socket names reuse the paper's single-decimal internet
/// rendering; a few are empty (unknown peer) and a few long.
///
/// Every workload opens with a joined stream channel (connect on machine
/// 1, accept on machine 2) and routes one event in three over it as a
/// completed send/receive pair, so message pairing — and everything
/// downstream of it (happens-before edges, critical path) — has real
/// work on every workload, not just the dedicated "paired" stream.
inline std::vector<meter::MeterMsg> make_messages(Workload w, int n) {
  using namespace meter;
  std::vector<MeterMsg> out;
  out.reserve(static_cast<std::size_t>(n) + 2);
  {
    MeterMsg c;
    c.body = MeterConnect{1, 0, 5, "111", "222"};
    c.header.machine = 1;
    c.header.cpu_time = 0;
    out.push_back(std::move(c));
    MeterMsg a;
    a.body = MeterAccept{2, 0, 6, 7, "222", "111"};
    a.header.machine = 2;
    a.header.cpu_time = 500;
    out.push_back(std::move(a));
  }
  for (int i = 0; i < n; ++i) {
    MeterMsg m;
    // Channel slice: a send from the connect endpoint immediately
    // followed by the matching receive at the accept endpoint.
    if (i % 6 == 0) {
      m.body = MeterSend{1, 0, 5, static_cast<std::uint32_t>(32 + i % 1024),
                         ""};
      m.header.machine = 1;
      m.header.cpu_time = 1000 * i;
      m.header.proc_time = 10000 * (i / 16);
      out.push_back(std::move(m));
      continue;
    }
    if (i % 6 == 1) {
      m.body = MeterRecv{2, 0, 7,
                         static_cast<std::uint32_t>(32 + (i - 1) % 1024), ""};
      m.header.machine = 2;
      m.header.cpu_time = 1000 * i + 700;
      m.header.proc_time = 10000 * (i / 16);
      out.push_back(std::move(m));
      continue;
    }
    switch (w) {
      case Workload::sendrecv:
        switch (i % 3) {
          case 0:
            m.body = MeterSend{i % 7, 0, static_cast<SocketId>(3 + i % 4),
                               static_cast<std::uint32_t>(32 + i % 1024),
                               i % 8 == 0 ? "228320140" : ""};
            break;
          case 1:
            m.body = MeterRecv{i % 7, 0, 3, 64, "228320140"};
            break;
          default:
            m.body = MeterRecvCall{i % 7, 0, 3};
            break;
        }
        break;
      case Workload::acceptconnect:
        if (i % 2 == 0) {
          m.body = MeterAccept{i % 7, 0, 4, static_cast<SocketId>(100 + i),
                               "131073", i % 16 == 0 ? "131073" : "196612"};
        } else {
          m.body = MeterConnect{i % 7, 0, 5, "196612", "131073"};
        }
        break;
      case Workload::mixed:
        switch (i % 10) {
          case 0: m.body = MeterSend{i % 7, 0, 4, 256, "228320140"}; break;
          case 1: m.body = MeterRecv{i % 7, 0, 3, 64, ""}; break;
          case 2: m.body = MeterRecvCall{i % 7, 0, 3}; break;
          case 3: m.body = MeterSockCrt{i % 7, 0, 9, 2, 1, 0}; break;
          case 4: m.body = MeterDup{i % 7, 0, 9, 10}; break;
          case 5: m.body = MeterDestSock{i % 7, 0, 9}; break;
          case 6: m.body = MeterFork{i % 7, 0, 1000 + i}; break;
          case 7: m.body = MeterAccept{i % 7, 0, 4, 11, "131073", "196612"}; break;
          case 8: m.body = MeterConnect{i % 7, 0, 5, "196612", "131073"}; break;
          default: m.body = MeterTermProc{i % 7, 0, 0}; break;
        }
        break;
    }
    m.header.machine = static_cast<std::uint16_t>(i % 8 == 0 ? 0 : 1 + i % 5);
    m.header.cpu_time = 1000 * i;
    m.header.proc_time = 10000 * (i / 16);
    out.push_back(std::move(m));
  }
  return out;
}

inline util::Bytes make_batch(Workload w, int n) {
  util::Bytes out;
  for (const auto& m : make_messages(w, n)) m.serialize_into(out);
  return out;
}

/// Rules exercising both engines: numeric clauses, a field-to-field
/// comparison (interpreted only for types missing a field), string
/// literals, and discards. Selectivity is partial so both accepted and
/// rejected records flow.
inline constexpr const char* kRules =
    "machine=5, cpuTime<10000\n"
    "machine=0, type=1, sock=4, destName=228320140\n"
    "type=8, sockName=peerName\n"
    "machine=#*, pid=#*, type=1, msgLength>128\n"
    "type=2, sourceName=228320140\n";

inline filter::FilterEngine make_engine(
    filter::EvalPath path, const char* rules = kRules,
    filter::MatchEngine match = filter::MatchEngine::bytecode) {
  auto d = filter::Descriptions::parse(filter::default_descriptions_text());
  auto t = filter::Templates::parse(rules);
  return filter::FilterEngine(std::move(*d), std::move(*t), path, nullptr,
                              match);
}

// ---- wall-clock rate measurement ------------------------------------------

template <typename Fn>
double measure_rate(std::uint64_t per_pass, Fn&& pass, double min_seconds) {
  using clock = std::chrono::steady_clock;
  std::uint64_t done = 0;
  const auto start = clock::now();
  double elapsed = 0;
  do {
    pass();
    done += per_pass;
    elapsed = std::chrono::duration<double>(clock::now() - start).count();
  } while (elapsed < min_seconds);
  return static_cast<double>(done) / elapsed;
}

/// Best of `reps` timed windows. The stages are measured sequentially on
/// one core, so a transient (another process, a frequency dip) skews
/// whichever side it lands on; the per-rep maximum is the stable
/// estimate of each path's actual rate.
template <typename Fn>
double best_rate(int reps, std::uint64_t per_pass, Fn&& pass,
                 double min_seconds) {
  double best = 0;
  for (int i = 0; i < reps; ++i) {
    const double r = measure_rate(per_pass, pass, min_seconds);
    if (r > best) best = r;
  }
  return best;
}

}  // namespace dpm::bench
