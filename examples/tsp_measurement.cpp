// The measurement study: a distributed traveling-salesman computation
// (the Lai & Miller 84 case study the paper reports on) monitored across
// machines, with the full analysis run over its trace — communication
// statistics, the communication graph, deduced global ordering, and the
// parallelism profile that tells you whether your workers actually
// overlap.
//
// Run it twice mentally: the parallelism profile with 1 worker vs 3
// workers is exactly the kind of evidence that drove the "substantial
// modifications ... resulting in substantial improvements" the paper
// mentions.
#include <iostream>

#include "analysis/report.h"
#include "apps/apps.h"
#include "control/session.h"
#include "kernel/world.h"
#include "util/strings.h"

namespace {

std::string run_study(int workers) {
  using namespace dpm;
  kernel::World world;
  const kernel::MachineId yellow = world.add_machine("yellow");
  world.add_machine("red");
  const char* worker_hosts[] = {"green", "blue", "purple"};
  for (int i = 0; i < workers; ++i) world.add_machine(worker_hosts[i]);

  control::install_monitor(world);
  apps::install_everywhere(world);
  control::spawn_meterdaemons(world);
  control::MonitorSession session(world, {.host = "yellow", .uid = 100});
  world.run();
  (void)session.drain_output();

  (void)session.command("filter f1 yellow");
  (void)session.command("newjob tsp");
  (void)session.command(util::strprintf(
      "addprocess tsp red tsp_master 9000 %d 10 1234", workers));
  for (int i = 0; i < workers; ++i) {
    (void)session.command(util::strprintf("addprocess tsp %s tsp_worker red 9000",
                                          worker_hosts[i]));
  }
  (void)session.command("setflags tsp all");
  std::string transcript = session.command("startjob tsp");
  (void)session.command("removejob tsp");
  (void)session.command("getlog f1 tsp.trace");
  (void)session.command("bye");
  world.run();

  std::string out;
  auto pos = transcript.find("tsp: best tour");
  if (pos != std::string::npos) {
    out += transcript.substr(pos, transcript.find('\n', pos) - pos) + "\n";
  }
  auto text = world.machine(yellow).fs.read_text("tsp.trace");
  if (text) {
    const dpm::analysis::Trace trace = dpm::analysis::read_trace(*text);
    out += dpm::analysis::full_report(trace);
  }
  return out;
}

}  // namespace

int main() {
  for (int workers : {1, 3}) {
    std::cout << "================ TSP with " << workers
              << " worker(s) ================\n";
    std::cout << run_study(workers) << "\n";
  }
  std::cout << "Compare the parallelism profiles: the 3-worker run should\n"
               "spend a large fraction of its window with >1 process active,\n"
               "while the 1-worker run is essentially serial.\n";
  return 0;
}
