// Registry instruments: counter/gauge/histogram semantics, the sim-time
// clock callback, and the bounded span ring with parent linkage.
#include "obs/registry.h"

#include <gtest/gtest.h>

#include "obs/span.h"

namespace dpm::obs {
namespace {

TEST(CounterTest, MonotonicAccumulation) {
  Registry reg;
  Counter& c = reg.counter("kernel.meter_events");
  EXPECT_EQ(c.value(), 0u);
  c.add();
  c.add(41);
  EXPECT_EQ(c.value(), 42u);
  // Same key resolves to the same instrument.
  EXPECT_EQ(&reg.counter("kernel.meter_events"), &c);
  EXPECT_EQ(reg.counters().size(), 1u);
}

TEST(GaugeTest, HighWaterTracksPeakNotCurrent) {
  Registry reg;
  Gauge& g = reg.gauge("net.in_flight");
  g.add(3);
  g.add(4);
  g.sub(5);
  EXPECT_EQ(g.value(), 2);
  EXPECT_EQ(g.high_water(), 7);
  g.set(1);
  EXPECT_EQ(g.value(), 1);
  EXPECT_EQ(g.high_water(), 7);  // set below the peak keeps the mark
}

TEST(GaugeTest, MismatchedSubGoesNegativeInsteadOfWrapping) {
  Gauge g;
  g.add(1);
  g.sub(3);
  EXPECT_EQ(g.value(), -2);  // signed: the accounting bug is visible
  EXPECT_EQ(g.high_water(), 1);
}

TEST(HistogramTest, Log2BucketBoundaries) {
  EXPECT_EQ(Histogram::bucket_of(-5), 0);
  EXPECT_EQ(Histogram::bucket_of(0), 0);
  EXPECT_EQ(Histogram::bucket_of(1), 1);
  EXPECT_EQ(Histogram::bucket_of(2), 2);
  EXPECT_EQ(Histogram::bucket_of(3), 2);
  EXPECT_EQ(Histogram::bucket_of(4), 3);
  EXPECT_EQ(Histogram::bucket_of(1023), 10);
  EXPECT_EQ(Histogram::bucket_of(1024), 11);
  EXPECT_EQ(Histogram::bucket_of(INT64_MAX), Histogram::kBuckets - 1);
  EXPECT_EQ(Histogram::bucket_bound(0), 0);
  EXPECT_EQ(Histogram::bucket_bound(10), 1023);
  EXPECT_EQ(Histogram::bucket_bound(63), INT64_MAX);
}

TEST(HistogramTest, ExactPowersOfTwoLandInOneDeterministicBucket) {
  // Table-driven audit of the 2^k edges: bucket i covers [2^(i-1), 2^i),
  // so 2^k is the *first* value of bucket k+1, never the last of bucket k.
  // An off-by-one here would shuffle batch-size histograms between runs
  // and make `dpmstat diff` unstable at round sample values.
  for (int k = 0; k <= 62; ++k) {
    const std::int64_t p = std::int64_t{1} << k;
    const int expected = k + 1 < Histogram::kBuckets ? k + 1
                                                     : Histogram::kBuckets - 1;
    EXPECT_EQ(Histogram::bucket_of(p), expected) << "2^" << k;
    if (k >= 1) {
      EXPECT_EQ(Histogram::bucket_of(p - 1), k) << "2^" << k << " - 1";
    }
    if (p - 1 >= 1) {
      // Each bucket's inclusive upper bound is one below the next power.
      EXPECT_EQ(Histogram::bucket_bound(k), p - 1) << "bound(" << k << ")";
    }
  }
  // Recording exactly 2^k must bump exactly that one bucket.
  Histogram h;
  h.record(4096);  // 2^12 -> bucket 13
  const std::uint64_t* b = h.buckets();
  for (int i = 0; i < Histogram::kBuckets; ++i) {
    EXPECT_EQ(b[i], i == 13 ? 1u : 0u) << "bucket " << i;
  }
}

TEST(HistogramTest, CountSumMinMax) {
  Histogram h;
  EXPECT_EQ(h.min(), 0);
  EXPECT_EQ(h.max(), 0);
  EXPECT_EQ(h.percentile(50), 0);  // empty
  h.record(10);
  h.record(3);
  h.record(500);
  EXPECT_EQ(h.count(), 3u);
  EXPECT_EQ(h.sum(), 513);
  EXPECT_EQ(h.min(), 3);
  EXPECT_EQ(h.max(), 500);
}

TEST(HistogramTest, PercentileIsBucketBoundClampedToMax) {
  Histogram h;
  for (int i = 0; i < 100; ++i) h.record(1000);  // all in bucket 10
  // The bucket bound (1023) exceeds the observed max, so the estimate is
  // clamped to the true maximum.
  EXPECT_EQ(h.percentile(50), 1000);
  EXPECT_EQ(h.percentile(99), 1000);

  Histogram mix;
  for (int i = 0; i < 90; ++i) mix.record(4);     // bucket 3, bound 7
  for (int i = 0; i < 10; ++i) mix.record(6000);  // bucket 13, bound 8191
  EXPECT_EQ(mix.percentile(50), 7);
  EXPECT_EQ(mix.percentile(90), 7);
  EXPECT_EQ(mix.percentile(99), 6000);
}

TEST(RegistryTest, ClockDefaultsToEpochUntilInstalled) {
  Registry reg;
  EXPECT_EQ(util::count_us(reg.now()), 0);
  util::TimePoint t{util::msec(5)};
  reg.set_clock([&] { return t; });
  EXPECT_EQ(util::count_us(reg.now()), 5000);
  t += util::msec(1);
  EXPECT_EQ(util::count_us(reg.now()), 6000);
}

TEST(RegistryTest, SpansNestWithParentLinkage) {
  Registry reg;
  util::TimePoint t{};
  reg.set_clock([&] { return t; });
  {
    ObsSpan outer(reg, "daemon.rpc_create");
    t += util::msec(2);
    {
      ObsSpan inner(reg, "filter.select_round");
      t += util::msec(1);
    }
  }
  const auto& ring = reg.span_ring();
  ASSERT_EQ(ring.size(), 4u);
  EXPECT_TRUE(ring[0].begin);
  EXPECT_EQ(ring[0].name, "daemon.rpc_create");
  EXPECT_EQ(ring[0].parent, 0u);  // root
  EXPECT_EQ(ring[0].t_us, 0);
  EXPECT_TRUE(ring[1].begin);
  EXPECT_EQ(ring[1].name, "filter.select_round");
  EXPECT_EQ(ring[1].parent, ring[0].span);  // nested under the open span
  EXPECT_EQ(ring[1].t_us, 2000);
  EXPECT_FALSE(ring[2].begin);
  EXPECT_EQ(ring[2].span, ring[1].span);  // innermost ends first
  EXPECT_EQ(ring[2].t_us, 3000);
  EXPECT_FALSE(ring[3].begin);
  EXPECT_EQ(ring[3].span, ring[0].span);
  EXPECT_EQ(reg.current_span(), 0u);  // stack fully unwound
}

TEST(RegistryTest, SpanDurationFeedsLatencyHistogram) {
  Registry reg;
  util::TimePoint t{};
  reg.set_clock([&] { return t; });
  Histogram& lat = reg.histogram("daemon.rpc_create_us");
  {
    ObsSpan span(reg, "daemon.rpc_create", &lat);
    t += util::usec(750);
  }
  EXPECT_EQ(lat.count(), 1u);
  EXPECT_EQ(lat.sum(), 750);
}

TEST(RegistryTest, SpanRingIsBounded) {
  Registry reg;
  reg.set_span_ring_capacity(4);
  for (int i = 0; i < 5; ++i) {
    ObsSpan span(reg, "sim.tick");  // 2 events each
  }
  EXPECT_EQ(reg.span_ring().size(), 4u);
  EXPECT_EQ(reg.spans_dropped(), 6u);  // 10 events, 4 kept
}

TEST(RegistryTest, NullRegistrySpanIsANoOp) {
  ObsSpan span(nullptr, "net.send");
  EXPECT_EQ(span.elapsed(), util::Duration{0});
}

}  // namespace
}  // namespace dpm::obs
