// E3 — filter selection and reduction (§3.4).
//
// Measures the FilterEngine directly (real-time throughput, since the
// filter's own speed is what bounds how much metering a filter machine
// can absorb), across rule-set sizes and selectivities, plus the
// trace-size reduction from '#' discard editing, plus the template-
// matching microbench comparing the interpreted Templates evaluator
// against the CompiledTemplates engine.
//
// Counters:
//   records_per_s   decode+select+render throughput (real time)
//   accept_rate     fraction of records kept
//   bytes_out_per_record  log bytes per accepted record (discard effect)
//
// Every run also writes BENCH_filter.json (records/sec interpreted vs
// compiled on the matching microbench) so the bench trajectory is
// machine-readable; `bench_filter --smoke` runs only that microbench,
// validates the JSON it wrote, and exits — it is registered under ctest.
#include <benchmark/benchmark.h>

#include <chrono>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <sstream>

#include "filter/compiled_templates.h"
#include "filter/filter_program.h"
#include "filter/trace.h"
#include "meter/metermsgs.h"
#include "obs/snapshot.h"
#include "util/strings.h"

namespace dpm::bench {
namespace {

/// A batch of realistic meter records from several machines/pids.
util::Bytes make_batch(int records) {
  util::Bytes out;
  for (int i = 0; i < records; ++i) {
    meter::MeterMsg m;
    switch (i % 4) {
      case 0:
        // Some sends hit the paper's Fig 3.3 rule (machine 0, sock 4,
        // destName 228320140).
        m.body = meter::MeterSend{i % 7, 0,
                                  static_cast<meter::SocketId>(i % 8 == 0 ? 4 : 3),
                                  static_cast<std::uint32_t>(32 + i % 1024),
                                  i % 8 == 0 ? "228320140" : ""};
        break;
      case 1:
        m.body = meter::MeterRecv{i % 7, 0, 3, 64, "228320140"};
        break;
      case 2:
        m.body = meter::MeterRecvCall{i % 7, 0, 3};
        break;
      default:
        m.body = meter::MeterAccept{i % 7, 0, 4, 5, "131073", "196612"};
        break;
    }
    m.header.machine = static_cast<std::uint16_t>(i % 8 == 0 ? 0 : 1 + i % 5);
    m.header.cpu_time = 1000 * i;
    m.header.proc_time = 10000 * (i / 16);
    auto wire = m.serialize();
    out.insert(out.end(), wire.begin(), wire.end());
  }
  return out;
}

filter::FilterEngine make_engine(const std::string& rules) {
  auto d = filter::Descriptions::parse(filter::default_descriptions_text());
  auto t = filter::Templates::parse(rules);
  return filter::FilterEngine(std::move(*d), std::move(*t));
}

constexpr int kRecords = 2000;

void run_engine(benchmark::State& state, const std::string& rules) {
  const util::Bytes batch = make_batch(kRecords);
  std::uint64_t accepted = 0, records = 0, bytes_out = 0;
  for (auto _ : state) {
    filter::FilterEngine engine = make_engine(rules);
    std::string log = engine.feed(1, batch);
    benchmark::DoNotOptimize(log);
    accepted += engine.stats().accepted;
    records += engine.stats().records_in;
    bytes_out += engine.stats().bytes_out;
  }
  state.counters["records_per_s"] = benchmark::Counter(
      static_cast<double>(records), benchmark::Counter::kIsRate);
  state.counters["accept_rate"] =
      static_cast<double>(accepted) / static_cast<double>(records);
  state.counters["bytes_out_per_record"] =
      accepted ? static_cast<double>(bytes_out) / static_cast<double>(accepted)
               : 0.0;
}

void BM_Filter_NoRules(benchmark::State& state) { run_engine(state, ""); }

void BM_Filter_OneRule(benchmark::State& state) {
  run_engine(state, "machine=2\n");  // keeps ~20%
}

void BM_Filter_PaperRules(benchmark::State& state) {
  // The paper's Fig 3.3 rules verbatim.
  run_engine(state,
             "machine=5, cpuTime<10000\n"
             "machine=0, type=1, sock=4, destName=228320140\n");
}

void BM_Filter_ManyRules(benchmark::State& state) {
  std::string rules;
  for (int i = 0; i < state.range(0); ++i) {
    rules += util::strprintf("machine=%d, type=%d\n", i % 5, 1 + i % 10);
  }
  run_engine(state, rules);
}

void BM_Filter_DiscardEditing(benchmark::State& state) {
  // Keep everything but drop four fields from every record (Fig 3.4's
  // size-reduction technique).
  run_engine(state, "machine=#*, pid=#*, pc=#*, procTime=#*\n");
}

void BM_Filter_HighlySelective(benchmark::State& state) {
  run_engine(state, "type=1, msgLength>900\n");  // keeps a few percent
}

BENCHMARK(BM_Filter_NoRules);
BENCHMARK(BM_Filter_OneRule);
BENCHMARK(BM_Filter_PaperRules);
BENCHMARK(BM_Filter_ManyRules)->Arg(4)->Arg(16)->Arg(64);
BENCHMARK(BM_Filter_DiscardEditing);
BENCHMARK(BM_Filter_HighlySelective);

// ---- template-matching microbench: interpreted vs compiled ----
//
// Decode the batch once, then time evaluate() alone — this is the per-
// record work the compiled engine removes (field-name probes, RHS
// re-resolution, literal re-parsing).

const char* kMatchRules =
    "machine=5, cpuTime<10000\n"
    "machine=0, type=1, sock=4, destName=228320140\n"
    "type=8, sockName=peerName\n"
    "machine=#*, pid=#*, type=1, msgLength>512\n";

std::vector<filter::Record> decode_batch(const filter::Descriptions& desc,
                                         int records) {
  const util::Bytes wire = make_batch(records);
  std::vector<filter::Record> out;
  std::size_t pos = 0;
  while (pos < wire.size()) {
    const std::uint32_t size = static_cast<std::uint32_t>(wire[pos]) |
                               static_cast<std::uint32_t>(wire[pos + 1]) << 8 |
                               static_cast<std::uint32_t>(wire[pos + 2]) << 16 |
                               static_cast<std::uint32_t>(wire[pos + 3]) << 24;
    util::Bytes raw(wire.begin() + static_cast<std::ptrdiff_t>(pos),
                    wire.begin() + static_cast<std::ptrdiff_t>(pos + size));
    pos += size;
    auto rec = desc.decode(raw);
    if (rec) out.push_back(std::move(*rec));
  }
  return out;
}

void BM_TemplateMatch_Interpreted(benchmark::State& state) {
  auto desc = filter::Descriptions::parse(filter::default_descriptions_text());
  auto templ = filter::Templates::parse(kMatchRules);
  const auto records = decode_batch(*desc, kRecords);
  std::uint64_t evaluated = 0;
  for (auto _ : state) {
    for (const auto& rec : records) {
      benchmark::DoNotOptimize(templ->evaluate(rec).accept);
    }
    evaluated += records.size();
  }
  state.counters["records_per_s"] = benchmark::Counter(
      static_cast<double>(evaluated), benchmark::Counter::kIsRate);
}

void BM_TemplateMatch_Compiled(benchmark::State& state) {
  auto desc = filter::Descriptions::parse(filter::default_descriptions_text());
  auto templ = filter::Templates::parse(kMatchRules);
  const auto compiled = filter::CompiledTemplates::compile(*templ, *desc);
  const auto records = decode_batch(*desc, kRecords);
  std::uint64_t evaluated = 0;
  for (auto _ : state) {
    for (const auto& rec : records) {
      benchmark::DoNotOptimize(compiled.evaluate(rec)->accept);
    }
    evaluated += records.size();
  }
  state.counters["records_per_s"] = benchmark::Counter(
      static_cast<double>(evaluated), benchmark::Counter::kIsRate);
}

BENCHMARK(BM_TemplateMatch_Interpreted);
BENCHMARK(BM_TemplateMatch_Compiled);

// ---- BENCH_filter.json ----

struct MatchBenchResult {
  double interpreted_rps = 0;
  double compiled_rps = 0;
  double speedup = 0;
  bool decisions_equal = false;
  int records = 0;
  std::string obs_snapshot_jsonl;  // filter engine's registry for this batch
};

/// Times `n` evaluate passes over `records`, repeating until at least
/// `min_seconds` of wall time has accumulated; returns records/second.
template <typename Eval>
double measure_rps(const std::vector<filter::Record>& records, Eval&& eval,
                   double min_seconds) {
  using clock = std::chrono::steady_clock;
  std::uint64_t evaluated = 0;
  std::uint64_t sink = 0;
  const auto start = clock::now();
  double elapsed = 0;
  do {
    for (const auto& rec : records) sink += eval(rec) ? 1 : 0;
    evaluated += records.size();
    elapsed = std::chrono::duration<double>(clock::now() - start).count();
  } while (elapsed < min_seconds);
  benchmark::DoNotOptimize(sink);
  return static_cast<double>(evaluated) / elapsed;
}

MatchBenchResult run_match_bench(int nrecords, double min_seconds) {
  auto desc = filter::Descriptions::parse(filter::default_descriptions_text());
  auto templ = filter::Templates::parse(kMatchRules);
  const auto compiled = filter::CompiledTemplates::compile(*templ, *desc);
  const auto records = decode_batch(*desc, nrecords);

  MatchBenchResult r;
  r.records = static_cast<int>(records.size());

  // Equivalence first: identical accept decisions AND identical rendered
  // trace lines (the discard edits) on every record.
  r.decisions_equal = true;
  for (const auto& rec : records) {
    const auto d = templ->evaluate(rec);
    const auto cd = compiled.evaluate(rec);
    if (!cd || cd->accept != d.accept ||
        (d.accept &&
         filter::trace_line(rec, cd->discard) != filter::trace_line(rec, d.discard))) {
      r.decisions_equal = false;
      break;
    }
  }

  // A full engine pass over the same batch, so the result file carries the
  // filter.* accounting (records in/accepted/bytes) for its workload.
  {
    auto d2 = filter::Descriptions::parse(filter::default_descriptions_text());
    auto t2 = filter::Templates::parse(kMatchRules);
    filter::FilterEngine engine(std::move(*d2), std::move(*t2));
    std::string log = engine.feed(1, make_batch(nrecords));
    benchmark::DoNotOptimize(log);
    r.obs_snapshot_jsonl = engine.obs().snapshot_jsonl();
  }

  r.interpreted_rps = measure_rps(
      records,
      [&](const filter::Record& rec) { return templ->evaluate(rec).accept; },
      min_seconds);
  r.compiled_rps = measure_rps(
      records,
      [&](const filter::Record& rec) { return compiled.evaluate(rec)->accept; },
      min_seconds);
  r.speedup = r.interpreted_rps > 0 ? r.compiled_rps / r.interpreted_rps : 0;
  return r;
}

bool write_bench_json(const MatchBenchResult& r, const std::string& path) {
  std::ofstream out(path, std::ios::trunc);
  if (!out) return false;
  out << util::strprintf(
      "{\n"
      "  \"bench\": \"filter_template_match\",\n"
      "  \"records\": %d,\n"
      "  \"rules\": 4,\n"
      "  \"interpreted_records_per_s\": %.0f,\n"
      "  \"compiled_records_per_s\": %.0f,\n"
      "  \"speedup\": %.2f,\n"
      "  \"decisions_equal\": %s,\n"
      "  \"obs_snapshot\": %s\n"
      "}\n",
      r.records, r.interpreted_rps, r.compiled_rps, r.speedup,
      r.decisions_equal ? "true" : "false",
      obs::jsonl_to_json_array(r.obs_snapshot_jsonl, 4).c_str());
  return out.good();
}

/// Minimal well-formedness check of the file just written: it must exist,
/// be a single JSON object, and carry every expected key.
bool validate_bench_json(const std::string& path) {
  std::ifstream in(path);
  if (!in) return false;
  std::stringstream ss;
  ss << in.rdbuf();
  const std::string text = ss.str();
  const std::string trimmed{util::trim(text)};
  if (trimmed.empty() || trimmed.front() != '{' || trimmed.back() != '}') {
    return false;
  }
  for (const char* key :
       {"\"bench\"", "\"records\"", "\"interpreted_records_per_s\"",
        "\"compiled_records_per_s\"", "\"speedup\"", "\"decisions_equal\"",
        "\"obs_snapshot\""}) {
    if (text.find(key) == std::string::npos) return false;
  }
  return text.find("\"decisions_equal\": true") != std::string::npos;
}

constexpr const char* kJsonPath = "BENCH_filter.json";

/// --smoke: the fast ctest entry point. Runs only the matching microbench,
/// writes and validates BENCH_filter.json, and fails (non-zero) if the
/// file is malformed or the two engines ever disagree.
int run_smoke() {
  const MatchBenchResult r = run_match_bench(512, 0.05);
  const std::string snap_err = obs::validate_snapshot(r.obs_snapshot_jsonl);
  if (!snap_err.empty()) {
    std::fprintf(stderr, "bench_filter: bad embedded snapshot: %s\n",
                 snap_err.c_str());
    return 1;
  }
  if (!write_bench_json(r, kJsonPath)) {
    std::fprintf(stderr, "bench_filter: cannot write %s\n", kJsonPath);
    return 1;
  }
  if (!validate_bench_json(kJsonPath)) {
    std::fprintf(stderr, "bench_filter: %s is malformed\n", kJsonPath);
    return 1;
  }
  std::printf(
      "bench_filter --smoke: interpreted=%.0f rec/s compiled=%.0f rec/s "
      "speedup=%.2fx decisions_equal=%s -> %s\n",
      r.interpreted_rps, r.compiled_rps, r.speedup,
      r.decisions_equal ? "true" : "false", kJsonPath);
  return r.decisions_equal ? 0 : 1;
}

}  // namespace
}  // namespace dpm::bench

int main(int argc, char** argv) {
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--smoke") == 0) return dpm::bench::run_smoke();
  }
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  // The full run also refreshes the machine-readable result file, with a
  // longer measurement window than --smoke.
  const auto r = dpm::bench::run_match_bench(2000, 0.5);
  if (!dpm::bench::write_bench_json(r, dpm::bench::kJsonPath)) return 1;
  std::printf("wrote %s (speedup %.2fx)\n", dpm::bench::kJsonPath, r.speedup);
  return 0;
}
