// Minimal leveled logging for the simulator.
//
// Logging defaults to `warn` so tests and benchmarks stay quiet; examples
// turn on `info` to narrate sessions. The sink is a global because the
// simulation executive is single-threaded by construction (one runnable
// task at a time), so no synchronization is required.
#pragma once

#include <sstream>
#include <string>

namespace dpm::util {

enum class LogLevel { debug = 0, info, warn, error, off };

void set_log_level(LogLevel level);
LogLevel log_level();

/// Redirects log output; pass nullptr to restore stderr.
void set_log_sink(std::ostream* sink);

void log_line(LogLevel level, const std::string& tag, const std::string& msg);

/// Stream-style logging: LOG(info, "net") << "packet " << n;
class LogStream {
 public:
  LogStream(LogLevel level, std::string tag) : level_(level), tag_(std::move(tag)) {}
  // Suppressed levels skip log_line entirely: operator<< already dropped
  // the payload, so without the guard every suppressed statement would
  // still materialize an empty string and re-check the level inside
  // log_line on the hot path.
  ~LogStream() {
    if (level_ >= log_level()) log_line(level_, tag_, ss_.str());
  }
  template <typename T>
  LogStream& operator<<(const T& v) {
    if (level_ >= log_level()) ss_ << v;
    return *this;
  }

 private:
  LogLevel level_;
  std::string tag_;
  std::ostringstream ss_;
};

}  // namespace dpm::util

#define DPM_LOG(level, tag) ::dpm::util::LogStream(::dpm::util::LogLevel::level, (tag))
