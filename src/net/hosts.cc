#include "net/hosts.h"

namespace dpm::net {

bool HostTable::add_host(const std::string& name, MachineId machine,
                         std::vector<Interface> interfaces) {
  if (by_name_.count(name) || names_.count(machine)) return false;
  for (const auto& itf : interfaces) {
    if (by_addr_.count({itf.network, itf.addr})) return false;
  }
  for (const auto& itf : interfaces) {
    by_addr_[{itf.network, itf.addr}] = machine;
  }
  by_name_[name] = Entry{machine, std::move(interfaces)};
  names_[machine] = name;
  return true;
}

std::optional<MachineId> HostTable::machine_of(const std::string& name) const {
  auto it = by_name_.find(name);
  if (it == by_name_.end()) return std::nullopt;
  return it->second.machine;
}

std::optional<std::string> HostTable::name_of(MachineId machine) const {
  auto it = names_.find(machine);
  if (it == names_.end()) return std::nullopt;
  return it->second;
}

const std::vector<Interface>* HostTable::interfaces_of(
    const std::string& name) const {
  auto it = by_name_.find(name);
  if (it == by_name_.end()) return nullptr;
  return &it->second.interfaces;
}

std::optional<SockAddr> HostTable::resolve_from(const std::string& from,
                                                const std::string& target,
                                                Port port) const {
  const auto* from_ifs = interfaces_of(from);
  const auto* tgt_ifs = interfaces_of(target);
  if (!from_ifs || !tgt_ifs) return std::nullopt;
  // Pick the first network (in target-interface order) both hosts share.
  for (const auto& t : *tgt_ifs) {
    for (const auto& f : *from_ifs) {
      if (f.network == t.network) {
        return SockAddr::inet(t.network, t.addr, port);
      }
    }
  }
  return std::nullopt;
}

std::optional<MachineId> HostTable::machine_at(const SockAddr& addr) const {
  if (addr.family != Family::internet) return std::nullopt;
  auto it = by_addr_.find({addr.network, addr.host});
  if (it == by_addr_.end()) return std::nullopt;
  return it->second;
}

std::vector<std::string> HostTable::host_names() const {
  std::vector<std::string> out;
  out.reserve(by_name_.size());
  for (const auto& [name, e] : by_name_) out.push_back(name);
  return out;
}

}  // namespace dpm::net
