#include "daemon/meterdaemon.h"

#include <algorithm>
#include <deque>
#include <map>
#include <optional>
#include <utility>

#include "daemon/protocol.h"
#include "kernel/syscalls.h"
#include "meter/meterflags.h"
#include "util/logging.h"
#include "util/strings.h"

namespace dpm::daemon {

namespace {

using kernel::Fd;
using kernel::Pid;
using kernel::SockDomain;
using kernel::SockType;
using kernel::Sys;
using util::Err;

/// Daemon-side record of a process it created or acquired.
struct ProcRec {
  std::int32_t uid = 0;
  std::uint16_t control_port = 0;
  std::string control_host;
  Fd gateway = -1;       // daemon's end of the stdio socket pair (-1: none)
  bool acquired = false;
  bool kill_acked = false;  // death already reported in a kill RPC reply
};

class Meterdaemon {
 public:
  explicit Meterdaemon(Sys& sys) : sys_(sys) {}

  void run() {
    auto lsock = sys_.socket(SockDomain::internet, SockType::stream);
    if (!lsock || !sys_.bind_port(*lsock, kDaemonPort) ||
        !sys_.listen(*lsock, 16)) {
      (void)sys_.print("meterdaemon: cannot bind daemon port\n");
      sys_.exit(1);
    }
    lsock_ = *lsock;

    for (;;) {
      std::vector<Fd> fds{lsock_};
      for (const auto& [pid, rec] : procs_) {
        if (rec.gateway >= 0) fds.push_back(rec.gateway);
      }
      auto sel = sys_.select(fds, /*child_events=*/true, std::nullopt);
      if (!sel) break;

      if (sel->child_event) drain_child_changes();
      for (Fd fd : sel->readable) {
        if (fd == lsock_) {
          serve_one_rpc();
        } else {
          forward_process_output(fd);
        }
      }
    }
  }

 private:
  /// §3.5.1: the daemon is signaled when one of its processes changes
  /// state; it connects to the responsible controller and reports.
  void drain_child_changes() {
    for (;;) {
      auto c = sys_.waitchange(/*block=*/false);
      if (!c) break;
      auto it = procs_.find(c->pid);
      if (it == procs_.end()) continue;
      const ProcRec rec = it->second;
      if (c->event == kernel::ChildEvent::exited ||
          c->event == kernel::ChildEvent::killed) {
        if (rec.gateway >= 0) {
          drain_gateway_tail(c->pid, rec);
          (void)sys_.close(rec.gateway);
        }
        procs_.erase(it);
      }
      // A death the controller itself requested was already reported in
      // the kill RPC's reply; re-announcing it would serialize a batched
      // removejob behind one notification connection per corpse.
      if (rec.control_port != 0 && !rec.kill_acked) {
        auto to = sys_.resolve(rec.control_host, rec.control_port);
        if (to) {
          StateNote note;
          note.machine = sys_.hostname();
          note.pid = c->pid;
          note.event = static_cast<std::uint8_t>(c->event);
          note.status = c->status;
          (void)notify(sys_, *to, note);
        }
      }
    }
  }

  /// Output the process wrote before exiting may still sit in the gateway.
  void drain_gateway_tail(Pid pid, const ProcRec& rec) {
    for (;;) {
      auto data = sys_.recv(rec.gateway, 4096);
      if (!data || data->empty()) break;
      send_io_note(pid, rec, util::to_string(*data));
    }
  }

  void forward_process_output(Fd gateway) {
    Pid pid = 0;
    const ProcRec* rec = nullptr;
    for (const auto& [p, r] : procs_) {
      if (r.gateway == gateway) {
        pid = p;
        rec = &r;
        break;
      }
    }
    if (!rec) return;
    auto data = sys_.recv(gateway, 4096);
    if (!data) return;
    if (data->empty()) {
      // Process closed its stdio; child-exit handling closes the fd.
      return;
    }
    send_io_note(pid, *rec, util::to_string(*data));
  }

  void send_io_note(Pid pid, const ProcRec& rec, std::string data) {
    if (rec.control_port == 0) return;
    auto to = sys_.resolve(rec.control_host, rec.control_port);
    if (!to) return;
    IoNote note;
    note.machine = sys_.hostname();
    note.pid = pid;
    note.data = std::move(data);
    (void)notify(sys_, *to, note);
  }

  void serve_one_rpc() {
    auto conn = sys_.accept(lsock_);
    if (!conn) return;
    // Bounded read: a client that connected and then died (or whose
    // machine was partitioned away) must not wedge the daemon's serve
    // loop on a half-delivered request.
    auto req = recv_msg(sys_, *conn, util::msec(500));
    if (req) {
      sys_.world().obs().counter("daemon.requests_served").add(1);
      DaemonMsg reply = dispatch(*req);
      (void)send_msg(sys_, *conn, reply);
    }
    (void)sys_.close(*conn);
  }

  /// At-most-once guard: a retried create/filter request (same nonce)
  /// replays the cached reply instead of spawning a second process.
  std::optional<DaemonMsg> replay_lookup(std::uint64_t nonce) const {
    if (nonce == 0) return std::nullopt;
    for (const auto& [n, reply] : replay_) {
      if (n == nonce) return reply;
    }
    return std::nullopt;
  }

  void replay_store(std::uint64_t nonce, const DaemonMsg& reply) {
    if (nonce == 0) return;
    replay_.emplace_back(nonce, reply);
    if (replay_.size() > kReplayCap) replay_.pop_front();
  }

  DaemonMsg dispatch(const DaemonMsg& req) {
    struct Visitor {
      Meterdaemon& d;
      DaemonMsg operator()(const CreateRequest& r) { return d.do_create(r); }
      DaemonMsg operator()(const FilterRequest& r) { return d.do_filter(r); }
      DaemonMsg operator()(const SetFlagsRequest& r) { return d.do_setflags(r); }
      DaemonMsg operator()(const ProcRequest& r) { return d.do_proc(r); }
      DaemonMsg operator()(const AcquireRequest& r) { return d.do_acquire(r); }
      DaemonMsg operator()(const IoSend& r) { return d.do_io_send(r); }
      DaemonMsg operator()(const BatchCreateRequest& r) {
        return d.do_batch_create(r);
      }
      DaemonMsg operator()(const BatchProcRequest& r) {
        return d.do_batch_proc(r);
      }
      // Anything else is a protocol error.
      DaemonMsg operator()(const CreateReply&) { return bad(); }
      DaemonMsg operator()(const FilterReply&) { return bad(); }
      DaemonMsg operator()(const SimpleReply&) { return bad(); }
      DaemonMsg operator()(const StateNote&) { return bad(); }
      DaemonMsg operator()(const IoNote&) { return bad(); }
      DaemonMsg operator()(const BatchCreateReply&) { return bad(); }
      DaemonMsg operator()(const BatchProcReply&) { return bad(); }
      static DaemonMsg bad() {
        return SimpleReply{static_cast<std::int32_t>(Err::einval)};
      }
    };
    return std::visit(Visitor{*this}, req);
  }

  /// Runs `fn` with the requester's identity (§3.5.5: "a user is granted
  /// no special privileges").
  template <typename Fn>
  DaemonMsg as_user(std::int32_t uid, Fn&& fn) {
    if (!sys_.seteuid(uid)) {
      return SimpleReply{static_cast<std::int32_t>(Err::eperm)};
    }
    DaemonMsg out = fn();
    (void)sys_.seteuid(kernel::kSuperUser);
    return out;
  }

  /// Creates the meter connection to a filter and issues setmeter().
  Err wire_meter(Pid pid, const std::string& filter_host,
                 std::uint16_t filter_port, std::uint32_t flags) {
    auto addr = sys_.resolve(filter_host, filter_port);
    if (!addr) return Err::enoent;
    auto ms = sys_.socket(SockDomain::internet, SockType::stream);
    if (!ms) return ms.error();
    auto conn = sys_.connect(*ms, *addr, util::msec(250));
    if (!conn) {
      (void)sys_.close(*ms);
      return conn.error();
    }
    auto sm = sys_.setmeter(pid, static_cast<std::int32_t>(flags), *ms);
    // The daemon's own descriptor is closed either way; the kernel holds
    // the hidden reference for the metered process (§3.2).
    (void)sys_.close(*ms);
    return sm.error();
  }

  /// The create core shared by the single and batched forms: spawn the
  /// process suspended behind a stdio gateway, wire its meter connection,
  /// record it. The caller holds the requester's identity (as_user).
  CreateReply create_one(std::int32_t uid, const std::string& filename,
                         const std::vector<std::string>& params,
                         const std::string& filter_host,
                         std::uint16_t filter_port, std::uint32_t meter_flags,
                         std::uint16_t control_port,
                         const std::string& control_host,
                         const std::string& stdin_file) {
    CreateReply reply;

    Fd child_stdin = -1;
    Fd gateway = -1;
    Fd child_end = -1;
    if (!stdin_file.empty()) {
      // §3.5.2: input from a file — the daemon opens the (already
      // copied) file and redirects the process's standard input to it.
      auto f = sys_.open(stdin_file, Sys::OpenMode::read);
      if (!f) {
        reply.status = static_cast<std::int32_t>(f.error());
        return reply;
      }
      child_stdin = *f;
    }
    // Gateway for stdout/stderr (and stdin when no file): a local
    // socket pair; local IPC is reliable (§3.5.2).
    auto pair = sys_.socketpair();
    if (!pair) {
      if (child_stdin >= 0) (void)sys_.close(child_stdin);
      reply.status = static_cast<std::int32_t>(pair.error());
      return reply;
    }
    gateway = pair->first;
    child_end = pair->second;
    if (child_stdin < 0) child_stdin = child_end;

    Sys::SpawnArgs sa;
    sa.path = filename;
    sa.args = params;
    sa.suspended = true;  // processes are created in the *new* state
    sa.stdin_fd = child_stdin;
    sa.stdout_fd = child_end;
    sa.stderr_fd = child_end;
    auto pid = sys_.spawn(sa);
    // The daemon's copy of the child end is no longer needed.
    (void)sys_.close(child_end);
    if (child_stdin != child_end) (void)sys_.close(child_stdin);
    if (!pid) {
      (void)sys_.close(gateway);
      reply.status = static_cast<std::int32_t>(pid.error());
      return reply;
    }

    if (filter_port != 0) {
      const Err e = wire_meter(*pid, filter_host, filter_port, meter_flags);
      if (e != Err::ok) {
        (void)sys_.kill_kill(*pid);
        (void)sys_.close(gateway);
        reply.status = static_cast<std::int32_t>(e);
        return reply;
      }
    }

    ProcRec rec;
    rec.uid = uid;
    rec.control_port = control_port;
    rec.control_host = control_host;
    rec.gateway = gateway;
    procs_[*pid] = rec;

    reply.pid = *pid;
    reply.status = 0;
    return reply;
  }

  DaemonMsg do_create(const CreateRequest& r) {
    if (auto cached = replay_lookup(r.nonce)) return *cached;
    DaemonMsg out = as_user(r.uid, [&]() -> DaemonMsg {
      return create_one(r.uid, r.filename, r.params, r.filter_host,
                        r.filter_port, r.meter_flags, r.control_port,
                        r.control_host, r.stdin_file);
    });
    replay_store(r.nonce, out);
    return out;
  }

  /// One RPC, one whole group of creates. The per-item statuses make a
  /// partial failure visible item-by-item — the controller decides whether
  /// to roll back or carry on. Cached under the batch nonce as a unit: a
  /// retried batch replays every pid, never re-spawns any of them.
  DaemonMsg do_batch_create(const BatchCreateRequest& r) {
    if (auto cached = replay_lookup(r.nonce)) return *cached;
    DaemonMsg out = as_user(r.uid, [&]() -> DaemonMsg {
      BatchCreateReply reply;
      reply.nonce = r.nonce;
      for (const auto& item : r.items) {
        const CreateReply one = create_one(
            r.uid, item.filename, item.params, r.filter_host, r.filter_port,
            r.meter_flags, r.control_port, r.control_host, /*stdin_file=*/{});
        reply.pids.push_back(one.status == 0 ? one.pid : -1);
        reply.statuses.push_back(one.status);
      }
      return reply;
    });
    replay_store(r.nonce, out);
    return out;
  }

  DaemonMsg do_filter(const FilterRequest& r) {
    if (auto cached = replay_lookup(r.nonce)) return *cached;
    DaemonMsg out = as_user(r.uid, [&]() -> DaemonMsg {
      FilterReply reply;

      // Reserve a port for the filter's meter socket: bind an ephemeral
      // port, note the number, release it (ports are never reused in a
      // run, so the filter can re-bind it).
      auto probe = sys_.socket(SockDomain::internet, SockType::stream);
      if (!probe) {
        reply.status = static_cast<std::int32_t>(probe.error());
        return reply;
      }
      auto bound = sys_.bind_port(*probe, 0);
      (void)sys_.close(*probe);
      if (!bound) {
        reply.status = static_cast<std::int32_t>(bound.error());
        return reply;
      }
      const net::Port meter_port = bound->port;

      auto pair = sys_.socketpair();
      if (!pair) {
        reply.status = static_cast<std::int32_t>(pair.error());
        return reply;
      }

      Sys::SpawnArgs sa;
      sa.path = r.filterfile;
      const std::string port_str = util::strprintf("%u", meter_port);
      const std::string parent_str = util::strprintf("%u", r.parent_port);
      switch (r.mode) {
        case 1:  // local filter: selects in place, forwards to its parent
          sa.args = {r.descriptions, r.templates, port_str, r.parent_host,
                     parent_str};
          break;
        case 2:  // aggregator: re-frames and concatenates, no selection
          sa.args = {port_str, r.parent_host, parent_str};
          break;
        default:  // session (root) filter
          sa.args = {r.logfile, r.descriptions, r.templates, port_str};
          break;
      }
      sa.suspended = false;  // filters start immediately
      sa.stdin_fd = pair->second;
      sa.stdout_fd = pair->second;
      sa.stderr_fd = pair->second;
      auto pid = sys_.spawn(sa);
      (void)sys_.close(pair->second);
      if (!pid) {
        (void)sys_.close(pair->first);
        reply.status = static_cast<std::int32_t>(pid.error());
        return reply;
      }

      ProcRec rec;
      rec.uid = r.uid;
      rec.control_port = r.control_port;
      rec.control_host = r.control_host;
      rec.gateway = pair->first;
      procs_[*pid] = rec;

      reply.pid = *pid;
      reply.status = 0;
      reply.meter_port = meter_port;
      return reply;
    });
    replay_store(r.nonce, out);
    return out;
  }

  DaemonMsg do_setflags(const SetFlagsRequest& r) {
    return as_user(r.uid, [&]() -> DaemonMsg {
      auto res = sys_.setmeter(r.pid, static_cast<std::int32_t>(r.flags),
                               meter::SETMETER_NO_CHANGE);
      return SimpleReply{static_cast<std::int32_t>(res.error())};
    });
  }

  /// The process-op core shared by the single and batched forms. The
  /// caller holds the requester's identity (as_user).
  Err proc_op(MsgType what, std::int32_t pid) {
    util::SysResult<void> res;
    switch (what) {
      case MsgType::start_request:
        res = sys_.kill_continue(pid);
        break;
      case MsgType::stop_request:
        res = sys_.kill_stop(pid);
        break;
      case MsgType::kill_request:
        res = sys_.kill_kill(pid);
        if (res.ok()) {
          if (auto it = procs_.find(pid); it != procs_.end()) {
            it->second.kill_acked = true;
          }
        }
        break;
      case MsgType::release_request:
        // Take the metering down but leave the process running
        // (removejob on acquired processes, §4.3).
        res = sys_.setmeter(pid, meter::SETMETER_NONE, meter::SETMETER_NONE);
        break;
      case MsgType::status_request: {
        // Liveness probe: pid 0 asks "is the daemon alive" (reaching
        // this code answers that); otherwise "is this process alive".
        if (pid == 0) {
          res = {};
        } else {
          kernel::Process* p =
              sys_.world().find_process(sys_.machine_id(), pid);
          res = (p && p->status != kernel::ProcStatus::dead)
                    ? util::SysResult<void>{}
                    : util::SysResult<void>{Err::esrch};
        }
        break;
      }
      default:
        res = Err::einval;
    }
    return res.error();
  }

  DaemonMsg do_proc(const ProcRequest& r) {
    return as_user(r.uid, [&]() -> DaemonMsg {
      return SimpleReply{static_cast<std::int32_t>(proc_op(r.what, r.pid))};
    });
  }

  /// One op, one pid list, one RPC. Statuses come back parallel to the
  /// request's pids.
  DaemonMsg do_batch_proc(const BatchProcRequest& r) {
    if (auto cached = replay_lookup(r.nonce)) return *cached;
    DaemonMsg out = as_user(r.uid, [&]() -> DaemonMsg {
      BatchProcReply reply;
      reply.nonce = r.nonce;
      reply.statuses.reserve(r.pids.size());
      for (std::int32_t pid : r.pids) {
        reply.statuses.push_back(static_cast<std::int32_t>(proc_op(r.what, pid)));
      }
      return reply;
    });
    replay_store(r.nonce, out);
    return out;
  }

  DaemonMsg do_acquire(const AcquireRequest& r) {
    return as_user(r.uid, [&]() -> DaemonMsg {
      // Acquired processes keep their environment; only metering changes.
      const Err e =
          wire_meter(r.pid, r.filter_host, r.filter_port, r.meter_flags);
      return SimpleReply{static_cast<std::int32_t>(e)};
    });
  }

  DaemonMsg do_io_send(const IoSend& r) {
    auto it = procs_.find(r.pid);
    if (it == procs_.end() || it->second.gateway < 0) {
      return SimpleReply{static_cast<std::int32_t>(Err::esrch)};
    }
    auto res = sys_.send(it->second.gateway, r.data);
    return SimpleReply{static_cast<std::int32_t>(res.error())};
  }

  static constexpr std::size_t kReplayCap = 64;

  Sys& sys_;
  Fd lsock_ = -1;
  std::map<Pid, ProcRec> procs_;
  std::deque<std::pair<std::uint64_t, DaemonMsg>> replay_;
};

}  // namespace

kernel::ProcessMain make_meterdaemon_main(const std::vector<std::string>&) {
  return [](Sys& sys) {
    Meterdaemon daemon(sys);
    daemon.run();
    sys.exit(0);
  };
}

void register_meterdaemon_program(kernel::ExecRegistry& registry) {
  registry.register_program(kMeterdaemonProgram, make_meterdaemon_main);
}

}  // namespace dpm::daemon
