#include "net/fabric.h"

#include <gtest/gtest.h>

#include <vector>

namespace dpm::net {
namespace {

TEST(Fabric, DeliversAfterLatency) {
  sim::Executive exec;
  Fabric fabric(exec, 1);
  NetworkConfig cfg;
  cfg.base_latency = util::usec(500);
  cfg.jitter_max = util::usec(0);
  cfg.per_kb = util::usec(0);
  fabric.configure_network(0, cfg);

  std::int64_t arrived_at = -1;
  fabric.send(0, 1, 2,0, false, 100,
              [&] { arrived_at = util::count_us(exec.now()); });
  exec.run();
  EXPECT_EQ(arrived_at, 500);
}

TEST(Fabric, SizeProportionalDelay) {
  sim::Executive exec;
  Fabric fabric(exec, 1);
  NetworkConfig cfg;
  cfg.base_latency = util::usec(0);
  cfg.jitter_max = util::usec(0);
  cfg.per_kb = util::usec(1000);
  fabric.configure_network(0, cfg);
  std::int64_t arrived_at = -1;
  fabric.send(0, 1, 2,0, false, 4096,
              [&] { arrived_at = util::count_us(exec.now()); });
  exec.run();
  EXPECT_EQ(arrived_at, 4000);
}

TEST(Fabric, OrderedChannelNeverReorders) {
  sim::Executive exec;
  Fabric fabric(exec, 99);
  NetworkConfig cfg;
  cfg.base_latency = util::usec(100);
  cfg.jitter_max = util::usec(500);  // heavy jitter
  fabric.configure_network(0, cfg);

  const std::uint64_t chan = fabric.new_channel();
  std::vector<int> order;
  for (int i = 0; i < 50; ++i) {
    fabric.send(0, 1, 2,chan, false, 10, [&order, i] { order.push_back(i); });
  }
  exec.run();
  ASSERT_EQ(order.size(), 50u);
  for (int i = 0; i < 50; ++i) EXPECT_EQ(order[static_cast<std::size_t>(i)], i);
}

TEST(Fabric, UnorderedPacketsCanReorder) {
  sim::Executive exec;
  Fabric fabric(exec, 12345);
  NetworkConfig cfg;
  cfg.base_latency = util::usec(100);
  cfg.jitter_max = util::usec(1000);
  fabric.configure_network(0, cfg);

  std::vector<int> order;
  for (int i = 0; i < 100; ++i) {
    // Fresh channel 0 = unordered.
    fabric.send(0, 1, 2,0, false, 10, [&order, i] { order.push_back(i); });
  }
  exec.run();
  ASSERT_EQ(order.size(), 100u);
  bool reordered = false;
  for (std::size_t i = 1; i < order.size(); ++i) {
    if (order[i] < order[i - 1]) reordered = true;
  }
  EXPECT_TRUE(reordered);
}

TEST(Fabric, DroppablePacketsAreLostAtConfiguredRate) {
  sim::Executive exec;
  Fabric fabric(exec, 7);
  NetworkConfig cfg;
  cfg.dgram_loss = 0.3;
  fabric.configure_network(0, cfg);

  int delivered = 0;
  for (int i = 0; i < 1000; ++i) {
    fabric.send(0, 1, 2,0, /*droppable=*/true, 10, [&] { ++delivered; });
  }
  exec.run();
  EXPECT_GT(delivered, 600);
  EXPECT_LT(delivered, 800);
  EXPECT_EQ(fabric.stats().packets_dropped,
            1000u - static_cast<std::uint64_t>(delivered));
}

TEST(Fabric, LocalHopsNeverDropAndAreFast) {
  sim::Executive exec;
  Fabric fabric(exec, 7);
  NetworkConfig cfg;
  cfg.dgram_loss = 1.0;  // would drop everything remotely
  fabric.configure_network(0, cfg);

  int delivered = 0;
  for (int i = 0; i < 100; ++i) {
    fabric.send(0, /*src=*/1, /*dst=*/1,0, /*droppable=*/true, 10,
                [&] { ++delivered; });
  }
  exec.run();
  EXPECT_EQ(delivered, 100);  // §3.5.2: local IPC is reliable
  EXPECT_LT(util::count_us(exec.now()), 1000);
}

TEST(Fabric, NonDroppableIgnoresLoss) {
  sim::Executive exec;
  Fabric fabric(exec, 7);
  NetworkConfig cfg;
  cfg.dgram_loss = 1.0;
  fabric.configure_network(0, cfg);
  int delivered = 0;
  fabric.send(0, 1, 2,0, /*droppable=*/false, 10, [&] { ++delivered; });
  exec.run();
  EXPECT_EQ(delivered, 1);  // stream traffic is reliable by contract
}

TEST(Fabric, StatsAccumulate) {
  sim::Executive exec;
  Fabric fabric(exec, 1);
  fabric.send(0, 1, 1,0, false, 100, [] {});
  fabric.send(0, 1, 1,0, false, 200, [] {});
  exec.run();
  EXPECT_EQ(fabric.stats().packets_sent, 2u);
  EXPECT_EQ(fabric.stats().bytes_sent, 300u);
  fabric.reset_stats();
  EXPECT_EQ(fabric.stats().packets_sent, 0u);
}

}  // namespace
}  // namespace dpm::net
