# Empty dependencies file for dpm_net.
# This may be replaced when dependencies are built.
