#include "analysis/trace_reader.h"

#include <algorithm>
#include <set>

#include "util/strings.h"

namespace dpm::analysis {

std::string proc_key_text(const ProcKey& k) {
  return util::strprintf("m%u/p%d", k.machine, k.pid);
}

std::optional<Event> event_from_record(const filter::Record& rec) {
  auto type = meter::event_by_name(util::to_lower(rec.event_name));
  if (!type) {
    // Description files name events in caps ("SEND"); map a few aliases.
    const std::string lower = util::to_lower(rec.event_name);
    if (lower == "receive") type = meter::EventType::recv;
    else if (lower == "socket") type = meter::EventType::sockcrt;
    else if (lower == "destsock") type = meter::EventType::destsock;
    else return std::nullopt;
  }
  Event e;
  e.type = *type;
  if (auto v = rec.num("machine")) e.machine = static_cast<std::uint16_t>(*v);
  if (auto v = rec.num("cpuTime")) e.cpu_time = *v;
  if (auto v = rec.num("procTime")) e.proc_time = *v;
  if (auto v = rec.num("pid")) e.pid = static_cast<std::int32_t>(*v);
  if (auto v = rec.num("pc")) e.pc = static_cast<std::uint32_t>(*v);
  if (auto v = rec.num("sock")) e.sock = static_cast<std::uint64_t>(*v);
  if (auto v = rec.num("newSock")) e.new_sock = static_cast<std::uint64_t>(*v);
  if (auto v = rec.num("msgLength")) e.msg_length = static_cast<std::uint32_t>(*v);
  if (auto v = rec.num("newPid")) e.new_pid = static_cast<std::int32_t>(*v);
  if (auto v = rec.num("status")) e.status = static_cast<std::int32_t>(*v);
  if (auto v = rec.text("destName")) e.dest_name = *v;
  if (auto v = rec.text("sourceName")) e.source_name = *v;
  if (auto v = rec.text("sockName")) e.sock_name = *v;
  if (auto v = rec.text("peerName")) e.peer_name = *v;
  return e;
}

namespace {

/// Case-insensitive match of `s` against an all-lowercase literal.
bool iequals(std::string_view s, std::string_view lower_lit) {
  if (s.size() != lower_lit.size()) return false;
  for (std::size_t i = 0; i < s.size(); ++i) {
    char c = s[i];
    if (c >= 'A' && c <= 'Z') c = static_cast<char>(c - 'A' + 'a');
    if (c != lower_lit[i]) return false;
  }
  return true;
}

/// Event type for a trace line's event name. Description files use caps
/// ("SEND") and a few long forms; matched without allocating.
std::optional<meter::EventType> type_for_name(std::string_view name) {
  using meter::EventType;
  struct Alias {
    const char* name;
    EventType type;
  };
  static constexpr Alias kNames[] = {
      {"send", EventType::send},         {"recv", EventType::recv},
      {"receive", EventType::recv},      {"recvcall", EventType::recvcall},
      {"sockcrt", EventType::sockcrt},   {"socket", EventType::sockcrt},
      {"dup", EventType::dup},           {"destsock", EventType::destsock},
      {"fork", EventType::fork},         {"accept", EventType::accept},
      {"connect", EventType::connect},   {"termproc", EventType::termproc},
  };
  for (const auto& a : kNames) {
    if (iequals(name, a.name)) return a.type;
  }
  return std::nullopt;
}

std::string unescape_value(std::string_view s) {
  std::string out;
  out.reserve(s.size());
  for (std::size_t i = 0; i < s.size(); ++i) {
    if (s[i] == '%' && i + 2 < s.size()) {
      auto hi = util::parse_int_base(s.substr(i + 1, 2), 16);
      if (hi) {
        out.push_back(static_cast<char>(*hi));
        i += 2;
        continue;
      }
    }
    out.push_back(s[i]);
  }
  return out;
}

/// The Event's copy of a string field. Numeric tokens are canonicalized
/// through their parsed value, matching what the Record-based path
/// produced (parse_trace_line + field_value_text).
std::string text_of(std::string_view value) {
  if (auto n = util::parse_int(value)) return std::to_string(*n);
  return std::string(value);
}

void apply_field(Event& e, std::string_view name, std::string_view value) {
  const auto num = util::parse_int(value);
  if (name == "machine") {
    if (num) e.machine = static_cast<std::uint16_t>(*num);
  } else if (name == "cpuTime") {
    if (num) e.cpu_time = *num;
  } else if (name == "procTime") {
    if (num) e.proc_time = *num;
  } else if (name == "pid") {
    if (num) e.pid = static_cast<std::int32_t>(*num);
  } else if (name == "pc") {
    if (num) e.pc = static_cast<std::uint32_t>(*num);
  } else if (name == "sock") {
    if (num) e.sock = static_cast<std::uint64_t>(*num);
  } else if (name == "newSock") {
    if (num) e.new_sock = static_cast<std::uint64_t>(*num);
  } else if (name == "msgLength") {
    if (num) e.msg_length = static_cast<std::uint32_t>(*num);
  } else if (name == "newPid") {
    if (num) e.new_pid = static_cast<std::int32_t>(*num);
  } else if (name == "status") {
    if (num) e.status = static_cast<std::int32_t>(*num);
  } else if (name == "destName") {
    e.dest_name = text_of(value);
  } else if (name == "sourceName") {
    e.source_name = text_of(value);
  } else if (name == "sockName") {
    e.sock_name = text_of(value);
  } else if (name == "peerName") {
    e.peer_name = text_of(value);
  }
  // Other names (size, traceType, ...) carry nothing the Event keeps.
}

}  // namespace

/// Tokens are scanned as views; the only allocations are the Event's own
/// string fields (and an unescape scratch, for the rare '%'-escaped
/// value).
bool parse_trace_event_line(std::string_view line, Event& e) {
  bool saw_event = false;
  std::size_t pos = 0;
  while (pos < line.size()) {
    while (pos < line.size() && (line[pos] == ' ' || line[pos] == '\t')) ++pos;
    if (pos >= line.size()) break;
    std::size_t end = line.find_first_of(" \t", pos);
    if (end == std::string_view::npos) end = line.size();
    const std::string_view tok = line.substr(pos, end - pos);
    pos = end;

    const std::size_t eq = tok.find('=');
    if (eq == std::string_view::npos || eq == 0) return false;
    const std::string_view name = tok.substr(0, eq);
    std::string_view value = tok.substr(eq + 1);
    std::string scratch;
    if (value.find('%') != std::string_view::npos) {
      scratch = unescape_value(value);
      value = scratch;
    }
    if (name == "event") {
      const auto t = type_for_name(value);
      if (!t) return false;
      e.type = *t;
      saw_event = true;
      continue;
    }
    apply_field(e, name, value);
  }
  return saw_event;
}

Trace read_trace(const std::string& text) {
  Trace out;
  const std::string_view sv{text};
  std::size_t start = 0;
  while (start < sv.size()) {
    const std::size_t nl = sv.find('\n', start);
    const std::size_t end = (nl == std::string_view::npos) ? sv.size() : nl;
    const std::string_view line = util::trim(sv.substr(start, end - start));
    start = end + 1;
    if (line.empty() || line[0] == '#') continue;
    Event e;
    if (!parse_trace_event_line(line, e)) {
      ++out.malformed;
      continue;
    }
    e.index = out.events.size();
    out.events.push_back(std::move(e));
  }
  return out;
}

std::vector<ProcKey> Trace::processes() const {
  std::set<ProcKey> keys;
  for (const auto& e : events) keys.insert(e.proc());
  return std::vector<ProcKey>(keys.begin(), keys.end());
}

}  // namespace dpm::analysis
