#include "analysis/parallelism.h"

#include <algorithm>
#include <map>

#include "analysis/ordering.h"

namespace dpm::analysis {

ParallelismProfile measure_parallelism(const Trace& trace) {
  ParallelismProfile out;
  if (trace.events.empty()) return out;

  // Local clocks are skewed across machines; align them using the offsets
  // deducible from the trace's own message pairs before sweeping.
  const Ordering ordering = order_events(trace);
  const ClockAlignment clocks = estimate_clock_alignment(trace, ordering);

  struct ProcWindow {
    std::int64_t first = 0;
    std::int64_t last = 0;
    bool seen = false;
    // Wait intervals: recvcall -> matching recv on the same socket.
    std::map<std::uint64_t, std::int64_t> pending_recvcall;  // sock -> time
    std::vector<std::pair<std::int64_t, std::int64_t>> waits;
  };
  std::map<ProcKey, ProcWindow> procs;

  for (const Event& e : trace.events) {
    ProcWindow& w = procs[e.proc()];
    const std::int64_t t = clocks.aligned(e);
    if (!w.seen) {
      w.first = t;
      w.last = t;
      w.seen = true;
    }
    w.last = std::max(w.last, t);
    if (e.type == meter::EventType::recvcall) {
      w.pending_recvcall[e.sock] = t;
    } else if (e.type == meter::EventType::recv) {
      auto it = w.pending_recvcall.find(e.sock);
      if (it != w.pending_recvcall.end()) {
        if (t > it->second) w.waits.emplace_back(it->second, t);
        w.pending_recvcall.erase(it);
      }
    }
  }
  out.processes = procs.size();

  // Build +1/-1 deltas for activity intervals (window minus waits).
  std::map<std::int64_t, int> deltas;
  std::int64_t lo = INT64_MAX, hi = INT64_MIN;
  for (auto& [key, w] : procs) {
    lo = std::min(lo, w.first);
    hi = std::max(hi, w.last);
    deltas[w.first] += 1;
    deltas[w.last] -= 1;
    for (auto& [a, b] : w.waits) {
      const std::int64_t wa = std::clamp(a, w.first, w.last);
      const std::int64_t wb = std::clamp(b, w.first, w.last);
      if (wb <= wa) continue;
      deltas[wa] -= 1;
      deltas[wb] += 1;
    }
  }
  if (hi <= lo) {
    out.total_us = 0;
    return out;
  }
  out.total_us = hi - lo;
  out.time_at_level.assign(procs.size() + 1, 0);

  int level = 0;
  std::int64_t prev = lo;
  double weighted = 0.0;
  for (const auto& [t, d] : deltas) {
    if (t > prev && level >= 0) {
      const std::int64_t span = t - prev;
      const std::size_t k =
          std::min(static_cast<std::size_t>(std::max(level, 0)),
                   out.time_at_level.size() - 1);
      out.time_at_level[k] += span;
      weighted += static_cast<double>(level) * static_cast<double>(span);
    }
    level += d;
    prev = t;
  }
  out.average = out.total_us > 0 ? weighted / static_cast<double>(out.total_us) : 0.0;
  return out;
}

}  // namespace dpm::analysis
