#include "analysis/timeline.h"

#include <gtest/gtest.h>

#include "analysis_testing.h"

namespace dpm::analysis {
namespace {

using analysis_testing::Stamp;
using meter::MeterRecv;
using meter::MeterRecvCall;
using meter::MeterSend;
using meter::MeterTermProc;

TEST(Timeline, EmptyTrace) {
  Trace t;
  EXPECT_EQ(render_timeline(t), "(empty trace)\n");
}

TEST(Timeline, OneRowPerProcess) {
  auto trace = analysis_testing::make_trace({
      {Stamp{0, 0, 0}, MeterSend{1, 0, 5, 1, ""}},
      {Stamp{0, 1000, 0}, MeterTermProc{1, 0, 0}},
      {Stamp{1, 0, 0}, MeterSend{2, 0, 6, 1, ""}},
      {Stamp{1, 1000, 0}, MeterTermProc{2, 0, 0}},
  });
  const std::string out = render_timeline(trace);
  EXPECT_NE(out.find("m0/p1"), std::string::npos);
  EXPECT_NE(out.find("m1/p2"), std::string::npos);
  EXPECT_NE(out.find("window: 1000 us"), std::string::npos);
}

TEST(Timeline, WaitIntervalsRenderAsDots) {
  auto trace = analysis_testing::make_trace({
      {Stamp{0, 0, 0}, MeterSend{1, 0, 5, 1, ""}},
      {Stamp{0, 250, 0}, MeterRecvCall{1, 0, 5}},
      {Stamp{0, 750, 0}, MeterRecv{1, 0, 5, 8, ""}},
      {Stamp{0, 1000, 0}, MeterTermProc{1, 0, 0}},
  });
  TimelineOptions opts;
  opts.width = 16;
  opts.show_legend = false;
  const std::string out = render_timeline(trace, opts);
  // The middle half of the row is dots; the edges are '#'.
  const auto bar = out.find('|');
  ASSERT_NE(bar, std::string::npos);
  const std::string row = out.substr(bar + 1, 16);
  EXPECT_EQ(row.front(), '#');
  EXPECT_EQ(row.back(), '#');
  EXPECT_NE(row.find('.'), std::string::npos);
  EXPECT_GT(std::count(row.begin(), row.end(), '.'), 6);
}

TEST(Timeline, WidthRespected) {
  auto trace = analysis_testing::make_trace({
      {Stamp{0, 0, 0}, MeterSend{1, 0, 5, 1, ""}},
      {Stamp{0, 500, 0}, MeterTermProc{1, 0, 0}},
  });
  TimelineOptions opts;
  opts.width = 20;
  const std::string out = render_timeline(trace, opts);
  const auto open = out.find('|');
  const auto close = out.find('|', open + 1);
  EXPECT_EQ(close - open - 1, 20u);
}

}  // namespace
}  // namespace dpm::analysis
