file(REMOVE_RECURSE
  "../bench/bench_perturbation"
  "../bench/bench_perturbation.pdb"
  "CMakeFiles/bench_perturbation.dir/bench_perturbation.cc.o"
  "CMakeFiles/bench_perturbation.dir/bench_perturbation.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_perturbation.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
