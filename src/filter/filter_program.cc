#include "filter/filter_program.h"

#include <algorithm>

#include "filter/trace.h"
#include "kernel/syscalls.h"
#include "meter/metermsgs.h"
#include "util/logging.h"
#include "util/strings.h"

namespace dpm::filter {

void FilterEngine::drain(
    std::uint64_t conn, const util::Bytes& data,
    const std::function<void(const Record&, const std::vector<bool>*,
                             const std::set<std::string>*)>& on_accept) {
  stats_.bytes_in += data.size();
  util::Bytes& buf = partial_[conn];
  buf.insert(buf.end(), data.begin(), data.end());

  std::size_t pos = 0;
  while (buf.size() - pos >= 4) {
    const std::uint32_t size = static_cast<std::uint32_t>(buf[pos]) |
                               static_cast<std::uint32_t>(buf[pos + 1]) << 8 |
                               static_cast<std::uint32_t>(buf[pos + 2]) << 16 |
                               static_cast<std::uint32_t>(buf[pos + 3]) << 24;
    if (size < meter::kHeaderSize || size > (1u << 20)) {
      // Desynchronized stream: drop the connection's buffer.
      ++stats_.malformed;
      buf.clear();
      pos = 0;
      break;
    }
    if (buf.size() - pos < size) break;  // record incomplete
    util::Bytes raw(buf.begin() + static_cast<std::ptrdiff_t>(pos),
                    buf.begin() + static_cast<std::ptrdiff_t>(pos + size));
    pos += size;
    ++stats_.records_in;

    auto rec = desc_.decode(raw);
    if (!rec) {
      ++stats_.malformed;
      continue;
    }
    // Hot path: the clause plan compiled against the record description.
    // Records of types the compiler did not cover fall back to the
    // interpreted evaluator.
    if (auto cd = compiled_.evaluate(*rec)) {
      ++stats_.eval_compiled;
      if (!cd->accept) {
        ++stats_.rejected;
        continue;
      }
      ++stats_.accepted;
      on_accept(*rec, cd->discard, nullptr);
    } else {
      ++stats_.eval_interpreted;
      const Templates::Decision d = templ_.evaluate(*rec);
      if (!d.accept) {
        ++stats_.rejected;
        continue;
      }
      ++stats_.accepted;
      on_accept(*rec, nullptr, d.discard.empty() ? nullptr : &d.discard);
    }
  }
  buf.erase(buf.begin(), buf.begin() + static_cast<std::ptrdiff_t>(pos));
}

std::string FilterEngine::feed(std::uint64_t conn, const util::Bytes& data) {
  std::string out;
  drain(conn, data,
        [&](const Record& rec, const std::vector<bool>* mask,
            const std::set<std::string>* names) {
          std::string line = names ? trace_line(rec, *names)
                                   : trace_line(rec, mask);
          stats_.bytes_out += line.size();
          out += line;
        });
  return out;
}

void FilterEngine::feed_each(std::uint64_t conn, const util::Bytes& data,
                             const std::function<void(const Record&)>& fn) {
  drain(conn, data,
        [&](const Record& rec, const std::vector<bool>*,
            const std::set<std::string>*) { fn(rec); });
}

kernel::ProcessMain make_filter_main(const std::vector<std::string>& argv) {
  return [argv](kernel::Sys& sys) {
    if (argv.size() < 5) {
      (void)sys.print("filter: usage: filter logfile descriptions templates port\n");
      sys.exit(1);
    }
    const std::string& logfile = argv[1];
    const std::string& desc_path = argv[2];
    const std::string& templ_path = argv[3];
    const auto port = util::parse_int(argv[4]);
    if (!port || *port <= 0 || *port > 65535) {
      (void)sys.print("filter: bad port\n");
      sys.exit(1);
    }

    auto read_file = [&sys](const std::string& path) -> std::string {
      auto fd = sys.open(path, kernel::Sys::OpenMode::read);
      if (!fd) return {};
      std::string text;
      for (;;) {
        auto chunk = sys.read(*fd, 4096);
        if (!chunk || chunk->empty()) break;
        text += util::to_string(*chunk);
      }
      (void)sys.close(*fd);
      return text;
    };

    std::string err;
    auto desc = Descriptions::parse(read_file(desc_path), &err);
    if (!desc) {
      (void)sys.print("filter: bad descriptions: " + err + "\n");
      sys.exit(1);
    }
    auto templ = Templates::parse(read_file(templ_path), &err);
    if (!templ) {
      (void)sys.print("filter: bad templates: " + err + "\n");
      sys.exit(1);
    }
    FilterEngine engine(std::move(*desc), std::move(*templ));

    auto log_fd = sys.open(logfile, kernel::Sys::OpenMode::write_trunc);
    if (!log_fd) {
      (void)sys.print("filter: cannot open log file\n");
      sys.exit(1);
    }

    auto lsock = sys.socket(kernel::SockDomain::internet,
                            kernel::SockType::stream);
    if (!lsock) sys.exit(1);
    auto bound = sys.bind_port(*lsock, static_cast<net::Port>(*port));
    if (!bound) {
      (void)sys.print("filter: cannot bind meter port\n");
      sys.exit(1);
    }
    if (!sys.listen(*lsock, 32)) sys.exit(1);

    std::vector<kernel::Fd> conns;
    for (;;) {
      std::vector<kernel::Fd> fds = conns;
      fds.push_back(*lsock);
      auto sel = sys.select(fds, /*child_events=*/false, std::nullopt);
      if (!sel) break;
      for (kernel::Fd fd : sel->readable) {
        if (fd == *lsock) {
          auto conn = sys.accept(*lsock);
          if (conn) conns.push_back(*conn);
          continue;
        }
        auto data = sys.recv(fd, 8192);
        if (!data || data->empty()) {
          // Metered process went away; drop the connection.
          engine.end_connection(static_cast<std::uint64_t>(fd));
          (void)sys.close(fd);
          conns.erase(std::remove(conns.begin(), conns.end(), fd), conns.end());
          continue;
        }
        const std::string lines =
            engine.feed(static_cast<std::uint64_t>(fd), *data);
        if (!lines.empty()) (void)sys.write(*log_fd, lines);
      }
    }
    sys.exit(0);
  };
}

void register_filter_program(kernel::ExecRegistry& registry) {
  registry.register_program(kStdFilterProgram, make_filter_main);
}

}  // namespace dpm::filter
