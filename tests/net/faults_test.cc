// Fault plans and the injector: DSL round-trips, reproducible random
// plans, and injected faults actually bending the fabric (bursts drop,
// spikes delay, partitions hold reliable traffic until they heal).
#include "net/faults.h"

#include <gtest/gtest.h>

#include "obs/snapshot.h"

namespace dpm::net {
namespace {

TEST(FaultPlan, ParsesEveryKindAndRoundTrips) {
  const char* dsl =
      "drop@200ms net=0 for=50ms p=0.8\n"
      "spike@1s net=1 for=200ms add=5ms   # comment to end of line\n"
      "partition@500ms red blue for=2s; reset@1s red blue\n"
      "# a full-line comment\n"
      "crash@2s green; restart@3s green; kill@1500ms blue 104\n";
  std::string err;
  auto plan = FaultPlan::parse(dsl, &err);
  ASSERT_TRUE(plan.has_value()) << err;
  ASSERT_EQ(plan->events.size(), 7u);
  EXPECT_EQ(plan->events[0].kind, FaultKind::drop_burst);
  EXPECT_EQ(plan->events[0].at, util::TimePoint{} + util::msec(200));
  EXPECT_DOUBLE_EQ(plan->events[0].loss, 0.8);
  EXPECT_EQ(plan->events[1].kind, FaultKind::latency_spike);
  EXPECT_EQ(plan->events[1].net, 1u);
  EXPECT_EQ(plan->events[1].extra_latency, util::msec(5));
  EXPECT_EQ(plan->events[2].a, "red");
  EXPECT_EQ(plan->events[2].b, "blue");
  EXPECT_EQ(plan->events[6].kind, FaultKind::kill);
  EXPECT_EQ(plan->events[6].pid, 104);

  // Canonical text parses back to the identical canonical text.
  const std::string canon = plan->to_string();
  auto again = FaultPlan::parse(canon, &err);
  ASSERT_TRUE(again.has_value()) << err;
  EXPECT_EQ(again->to_string(), canon);
}

TEST(FaultPlan, RejectsMalformedEvents) {
  std::string err;
  EXPECT_FALSE(FaultPlan::parse("drop net=0 for=1ms p=1", &err).has_value());
  EXPECT_FALSE(err.empty());
  EXPECT_FALSE(FaultPlan::parse("drop@10ms net=0 p=1", &err).has_value());
  EXPECT_FALSE(FaultPlan::parse("drop@10ms net=0 for=1ms p=1.5", &err).has_value());
  EXPECT_FALSE(FaultPlan::parse("spike@10ms net=0 for=1ms", &err).has_value());
  EXPECT_FALSE(FaultPlan::parse("partition@1ms red for=1s", &err).has_value());
  EXPECT_FALSE(FaultPlan::parse("kill@1ms blue pid", &err).has_value());
  EXPECT_FALSE(FaultPlan::parse("explode@1ms red", &err).has_value());
}

TEST(FaultPlan, RandomIsReproducibleAndNeverTouchesTheHub) {
  const std::vector<std::string> machines = {"hub", "a", "b", "c"};
  const FaultPlan p1 = FaultPlan::random(42, machines, util::msec(500));
  const FaultPlan p2 = FaultPlan::random(42, machines, util::msec(500));
  EXPECT_FALSE(p1.empty());
  EXPECT_EQ(p1.to_string(), p2.to_string());

  for (const FaultEvent& ev : p1.events) {
    EXPECT_NE(ev.kind, FaultKind::kill);  // pids are not knowable at plan time
    if (ev.kind == FaultKind::crash || ev.kind == FaultKind::restart) {
      EXPECT_NE(ev.a, "hub");
    }
    EXPECT_GE(util::count_us(ev.at - util::TimePoint{}), 0);
  }
  // Every crash is paired with a later restart of the same machine.
  for (const FaultEvent& ev : p1.events) {
    if (ev.kind != FaultKind::crash) continue;
    bool restarted = false;
    for (const FaultEvent& other : p1.events) {
      if (other.kind == FaultKind::restart && other.a == ev.a &&
          other.at > ev.at) {
        restarted = true;
      }
    }
    EXPECT_TRUE(restarted) << "unrestarted crash of " << ev.a;
  }
}

TEST(FaultInjector, BurstDropsAndSpikeDelays) {
  sim::Executive exec;
  obs::Registry reg;
  Fabric fabric(exec, 7, &reg);
  NetworkConfig cfg;
  cfg.base_latency = util::msec(1);
  cfg.jitter_max = util::usec(0);
  cfg.per_kb = util::usec(0);
  fabric.configure_network(0, cfg);

  auto plan = FaultPlan::parse(
      "drop@1ms net=0 for=10ms p=1.0; spike@1ms net=0 for=10ms add=2ms");
  ASSERT_TRUE(plan.has_value());
  FaultInjector inj(exec, fabric, *plan, FaultHooks{}, &reg);
  inj.arm();

  int delivered = 0;
  std::int64_t reliable_at = -1;
  exec.schedule_at(exec.now() + util::msec(2), [&] {
    fabric.send(0, 1, 2, 0, /*droppable=*/true, 10, [&] { ++delivered; });
    fabric.send(0, 1, 2, 0, /*droppable=*/false, 10,
                [&] { reliable_at = util::count_us(exec.now()); });
  });
  exec.run();

  EXPECT_EQ(delivered, 0);  // burst at p=1.0 eats the datagram
  EXPECT_EQ(reliable_at, 2000 + 1000 + 2000);  // send + base + spike
  EXPECT_EQ(inj.injected(), 2u);
  EXPECT_EQ(reg.counter("faults.injections").value(), 2u);
  EXPECT_EQ(reg.counter("faults.drop_bursts").value(), 1u);
  EXPECT_EQ(reg.counter("faults.latency_spikes").value(), 1u);
  EXPECT_EQ(reg.counter("net.bytes_dropped").value(), 10u);

  // The faults.* instruments ride the standard snapshot schema.
  std::string err;
  auto snap = obs::parse_snapshot(reg.snapshot_jsonl(), &err);
  ASSERT_TRUE(snap.has_value()) << err;
  EXPECT_EQ(snap->counters.at("faults.injections"), 2u);
  EXPECT_EQ(snap->counters.at("faults.drop_bursts"), 1u);
}

TEST(FaultInjector, PartitionHoldsReliableTrafficUntilHeal) {
  sim::Executive exec;
  obs::Registry reg;
  Fabric fabric(exec, 7, &reg);
  NetworkConfig cfg;
  cfg.base_latency = util::msec(1);
  cfg.jitter_max = util::usec(0);
  cfg.per_kb = util::usec(0);
  fabric.configure_network(0, cfg);

  // No machine_id hook: numeric names resolve directly.
  auto plan = FaultPlan::parse("partition@1ms 1 2 for=4ms");
  ASSERT_TRUE(plan.has_value());
  FaultInjector inj(exec, fabric, *plan, FaultHooks{}, &reg);
  inj.arm();

  int dgram_delivered = 0;
  int bystander_delivered = 0;
  std::int64_t reliable_at = -1;
  exec.schedule_at(exec.now() + util::msec(2), [&] {
    EXPECT_TRUE(fabric.partitioned(1, 2));
    EXPECT_FALSE(fabric.partitioned(1, 3));
    fabric.send(0, 1, 2, 0, /*droppable=*/true, 10,
                [&] { ++dgram_delivered; });
    fabric.send(0, 1, 2, 0, /*droppable=*/false, 10,
                [&] { reliable_at = util::count_us(exec.now()); });
    fabric.send(0, 1, 3, 0, /*droppable=*/true, 10,
                [&] { ++bystander_delivered; });
  });
  exec.run();

  EXPECT_EQ(dgram_delivered, 0);      // datagrams across the cut are lost
  EXPECT_EQ(bystander_delivered, 1);  // other pairs are untouched
  // Stream traffic resumes after the heal (5ms) plus normal latency.
  EXPECT_EQ(reliable_at, 5000 + 1000);
  EXPECT_FALSE(fabric.partitioned(1, 2));
  EXPECT_EQ(reg.counter("faults.partitions").value(), 1u);
  EXPECT_EQ(reg.gauge("faults.active_partitions").value(), 0);
  EXPECT_EQ(reg.gauge("faults.active_partitions").high_water(), 1);
}

}  // namespace
}  // namespace dpm::net
