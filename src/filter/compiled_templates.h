// Compiled selection rules: the meter→filter hot path (§3.3–3.4).
//
// Templates::evaluate re-resolves every clause per record: it probes the
// record for the LHS field by name, re-decides whether the RHS token is a
// field reference or a literal, and re-parses numeric literals. A filter
// saturates on exactly this loop, so CompiledTemplates performs all of
// that resolution ONCE per (rule, event type) against the record
// description (Fig 3.2):
//
//   * the LHS field name becomes an index into Record::fields (decode
//     order is fixed per event type);
//   * the RHS is classified once as field-reference / integer literal /
//     string literal — the field-reference tie-break (see templates.h) is
//     applied against the event's described layout, not per record;
//   * numeric literals are pre-parsed, and the literal's textual view is
//     pre-rendered for the string-comparison fallback;
//   * rules that name a field the event type does not carry can never
//     match and are dropped from that type's plan (first-match order of
//     the surviving rules is preserved);
//   * each rule's '#' discards are pre-baked into a per-type field-index
//     mask, so an accepted record's edit needs no name lookups either.
//
// Evaluation is then pure index arithmetic for every described event
// type; records of unknown types (or hand-built records whose field count
// does not match the description) report "not compiled" and the caller
// falls back to the interpreted Templates path. Compiled and interpreted
// evaluation produce identical accept/discard decisions for any record
// decoded via Descriptions::decode.
#pragma once

#include <cstdint>
#include <optional>
#include <vector>

#include "filter/descriptions.h"
#include "filter/templates.h"

namespace dpm::filter {

class CompiledTemplates {
 public:
  /// An empty engine: nothing is compiled, every evaluate() falls back.
  CompiledTemplates() = default;

  /// Resolves every rule of `templates` against every event type that
  /// `descriptions` describes.
  static CompiledTemplates compile(const Templates& templates,
                                   const Descriptions& descriptions);

  struct Decision {
    bool accept = false;
    /// Discard mask of the matching rule, indexed like Record::fields;
    /// nullptr when the rule discards nothing (or accept is false).
    const std::vector<bool>* discard = nullptr;
  };

  /// Evaluates a decoded record via index lookups only. Returns nullopt
  /// when the record's type has no compiled plan or its field count does
  /// not match the description — callers fall back to the interpreted
  /// Templates::evaluate.
  std::optional<Decision> evaluate(const Record& rec) const;

  /// Evaluates a wire record in place: clause operands are read straight
  /// off the record's bytes through the type's WirePlan, so nothing is
  /// decoded or allocated. Callers should bounds-validate the record
  /// first (WirePlan::validate); the caller falls back to the interpreted
  /// path when this returns nullopt (no compiled plan, or a description
  /// the view decoder cannot handle). Decision-identical to evaluate() on
  /// the decoded record.
  std::optional<Decision> evaluate(const RecordView& v) const;

  /// Number of event types with a compiled plan.
  std::size_t plan_count() const;

 private:
  struct ClausePlan {
    std::size_t lhs = 0;  // index into Record::fields
    CmpOp op = CmpOp::eq;
    bool wildcard = false;
    bool rhs_is_field = false;
    std::size_t rhs_field = 0;             // when rhs_is_field
    std::optional<std::int64_t> rhs_num;   // pre-parsed numeric literal
    std::string rhs_text;                  // literal's textual view
  };
  struct RulePlan {
    std::vector<ClausePlan> clauses;
    std::vector<bool> discard;  // per-field mask; empty = no discards
  };
  struct EventPlan {
    bool valid = false;
    std::size_t field_count = 0;
    std::vector<RulePlan> rules;
    /// Field locators for the zero-copy path (copied from the
    /// Descriptions at compile time, so plans own everything they need).
    WirePlan wire;
  };

  static bool clause_holds(const ClausePlan& c, const Record& rec);
  static bool clause_holds(const ClausePlan& c, const RecordView& v,
                           const WirePlan& wire);

  /// Plans indexed by traceType. Types beyond kMaxDirectType are left
  /// uncompiled (interpreted fallback) to bound the table size.
  static constexpr std::uint32_t kMaxDirectType = 1024;
  std::vector<EventPlan> plans_;
  bool accept_all_ = false;  // empty rule set: accept, discard nothing

  /// The bytecode engine lowers these plans into its flat op array — one
  /// source of truth for clause resolution.
  friend class FilterBytecode;
};

}  // namespace dpm::filter
