// Token ring: n processes pass a token around a cycle of stream
// connections. A structural-study workload — its communication graph is
// a ring, which the analysis module should recover exactly.
#include "apps/apps.h"
#include "apps/apps_util.h"

namespace dpm::apps {

using kernel::SockDomain;
using kernel::SockType;
using kernel::Sys;

kernel::ProcessMain make_ring_node(const std::vector<std::string>& argv) {
  return [argv](Sys& sys) {
    const auto index = arg_int(argv, 1, 0);
    const auto n = arg_int(argv, 2, 2);
    const auto rounds = arg_int(argv, 3, 3);
    const auto base_port = static_cast<net::Port>(arg_int(argv, 4, 8000));
    std::vector<std::string> hosts;
    for (std::size_t i = 5; i < argv.size(); ++i) hosts.push_back(argv[i]);
    if (n < 2 || static_cast<std::int64_t>(hosts.size()) != n) {
      (void)sys.print("ring_node: bad arguments\n");
      sys.exit(1);
    }

    // Listen for the predecessor, connect to the successor.
    auto ls = sys.socket(SockDomain::internet, SockType::stream);
    if (!ls ||
        !sys.bind_port(*ls, static_cast<net::Port>(base_port + index)) ||
        !sys.listen(*ls, 2)) {
      sys.exit(1);
    }
    const auto succ = (index + 1) % n;
    auto outr = connect_retry(sys, hosts[static_cast<std::size_t>(succ)],
                              static_cast<net::Port>(base_port + succ));
    if (!outr) sys.exit(1);
    kernel::Fd out = *outr;
    auto in = sys.accept(*ls);
    if (!in) sys.exit(1);

    const util::Bytes token = payload(16, 0x33);
    std::int64_t seen = 0;
    if (index == 0) {
      if (!sys.send(out, token)) sys.exit(1);
    }
    while (seen < rounds) {
      auto t = sys.recv_exact(*in, token.size());
      if (!t) break;
      ++seen;
      sys.compute(util::usec(200));  // per-hop work
      const bool last_pass = index == 0 && seen == rounds;
      if (!last_pass) {
        if (!sys.send(out, token)) break;
      }
      if (index != 0 && seen == rounds) break;
    }
    (void)sys.close(out);
    (void)sys.close(*in);
    (void)sys.close(*ls);
    (void)sys.print(util::strprintf("ring_node %lld: %lld passes\n",
                                    static_cast<long long>(index),
                                    static_cast<long long>(seen)));
    sys.exit(0);
  };
}

}  // namespace dpm::apps
