file(REMOVE_RECURSE
  "libdpm_meter.a"
)
