file(REMOVE_RECURSE
  "CMakeFiles/tsp_measurement.dir/tsp_measurement.cpp.o"
  "CMakeFiles/tsp_measurement.dir/tsp_measurement.cpp.o.d"
  "tsp_measurement"
  "tsp_measurement.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tsp_measurement.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
