// Per-machine miniature filesystem.
//
// Holds executable files (resolved through the ExecRegistry), filter
// description/template files, filter log files under /usr/tmp, and files
// staged by the simulated rcp. Access control follows the paper's policy
// (§3.5.5): plain account-based owner checks, no special monitor privilege.
#pragma once

#include <cstdint>
#include <map>
#include <optional>
#include <string>
#include <vector>

#include "kernel/types.h"
#include "util/bytes.h"
#include "util/result.h"

namespace dpm::kernel {

struct FileData {
  util::Bytes content;
  Uid owner = kSuperUser;
  bool world_readable = true;
  /// Executable files name a program in the ExecRegistry instead of
  /// carrying machine code.
  std::optional<std::string> program;
};

class FileSystem {
 public:
  /// Creates or replaces a regular file.
  void put(const std::string& path, util::Bytes content, Uid owner,
           bool world_readable = true);
  void put_text(const std::string& path, const std::string& text,
                Uid owner = kSuperUser, bool world_readable = true);

  /// Installs an executable file referring to a registered program.
  void put_executable(const std::string& path, const std::string& program,
                      Uid owner = kSuperUser);

  bool exists(const std::string& path) const;

  /// Read access check per §3.5.5.
  util::SysResult<const FileData*> open_read(const std::string& path,
                                             Uid uid) const;

  /// Returns the mutable file, creating it if absent (write access check).
  util::SysResult<FileData*> open_write(const std::string& path, Uid uid,
                                        bool truncate);

  util::SysResult<void> remove(const std::string& path, Uid uid);

  /// Whole-file convenience reads for the harness and analysis code.
  std::optional<std::string> read_text(const std::string& path) const;
  std::optional<util::Bytes> read_bytes(const std::string& path) const;

  std::vector<std::string> list(const std::string& prefix) const;

 private:
  std::map<std::string, FileData> files_;
};

}  // namespace dpm::kernel
