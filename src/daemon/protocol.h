// The controller ↔ meterdaemon communication protocol (§3.5.1, Fig 3.6).
//
// "This format includes a message type and a message body. ... The
// exchange is structured as a remote procedure call. ... the controller
// sends a request message to the meterdaemon over this connection, and
// then waits for the meterdaemon's reply. ... the meterdaemon carries out
// the requested function, sends a reply message back to the controller
// over the connection, closes the connection, and then waits for a new
// connection request."
//
// The one protocol exception is reproduced too: state-change reports are
// connections *initiated by the daemon* to the controller's notification
// socket. The wire format is: u32 total size, u32 type, body. Types 11
// (create request) and 18 (create reply) match Fig 3.6.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <variant>
#include <vector>

#include "kernel/syscalls.h"
#include "net/address.h"
#include "util/bytes.h"
#include "util/result.h"

namespace dpm::daemon {

/// Well-known port every meterdaemon listens on.
inline constexpr net::Port kDaemonPort = 577;

enum class MsgType : std::uint32_t {
  create_request = 11,   // Fig 3.6
  create_reply = 18,     // Fig 3.6
  filter_request = 12,
  filter_reply = 19,
  setflags_request = 13,
  start_request = 14,
  stop_request = 15,
  kill_request = 16,
  acquire_request = 17,
  release_request = 20,
  simple_reply = 21,     // status-only reply (setflags/start/stop/kill/...)
  status_request = 22,   // liveness probe: pid=0 pings the daemon itself
  state_note = 30,       // daemon → controller: child state change
  io_note = 31,          // daemon → controller: process stdout data
  io_send = 32,          // controller → daemon: data for process stdin
  // Batched forms (sharded controller): one RPC carries a whole daemon
  // group's worth of creates or process ops, so job start/kill wall time
  // scales with shards, not processes.
  batch_create_request = 33,
  batch_create_reply = 34,
  batch_proc_request = 35,
  batch_proc_reply = 36,
};

/// Fig 3.6 "create request": filename, parameters, the filter's socket
/// name as (host, port) per §3.5.4, meter flags, and the controller's
/// notification socket name. `uid` identifies the requesting account
/// (§3.5.5); `stdin_file` is the optional input file the daemon opens and
/// redirects (§3.5.2).
struct CreateRequest {
  std::int32_t uid = 0;
  std::string filename;
  std::vector<std::string> params;
  std::uint16_t filter_port = 0;
  std::string filter_host;
  std::uint32_t meter_flags = 0;
  std::uint16_t control_port = 0;
  std::string control_host;
  std::string stdin_file;  // empty: gateway stdio
  /// Request identity for at-most-once semantics: a retried create carrying
  /// the same nonce returns the daemon's cached reply instead of spawning a
  /// second process. 0 disables the replay cache.
  std::uint64_t nonce = 0;
};

struct CreateReply {
  std::int32_t pid = 0;
  std::int32_t status = 0;  // 0 ok, else util::Err value
};

/// Create a filter process from `filterfile` with its support files; the
/// reply reports the meter port the filter bound.
struct FilterRequest {
  std::int32_t uid = 0;
  std::string filterfile;
  std::string logfile;
  std::string descriptions;
  std::string templates;
  std::uint16_t control_port = 0;
  std::string control_host;
  /// At-most-once identity, as for CreateRequest.
  std::uint64_t nonce = 0;
  /// Fan-in tier placement: 0 = session (root) filter, 1 = per-machine
  /// local filter, 2 = aggregator. Modes 1 and 2 name the node's parent
  /// in the fan-in tree — the daemon passes it to the spawned program,
  /// which connects upward and metertap()s the edge.
  std::uint8_t mode = 0;
  std::string parent_host;
  std::uint16_t parent_port = 0;
};

struct FilterReply {
  std::int32_t pid = 0;
  std::int32_t status = 0;
  std::uint16_t meter_port = 0;
};

struct SetFlagsRequest {
  std::int32_t uid = 0;
  std::int32_t pid = 0;
  std::uint32_t flags = 0;
};

/// start / stop / kill / release / status share a body; the MsgType
/// disambiguates. status_request with pid=0 is a pure liveness ping (the
/// controller's reconciliation probe); with a pid it asks whether that
/// created process is still alive (0 ok, esrch gone).
struct ProcRequest {
  MsgType what = MsgType::start_request;
  std::int32_t uid = 0;
  std::int32_t pid = 0;
};

struct AcquireRequest {
  std::int32_t uid = 0;
  std::int32_t pid = 0;
  std::uint16_t filter_port = 0;
  std::string filter_host;
  std::uint32_t meter_flags = 0;
};

struct SimpleReply {
  std::int32_t status = 0;
};

/// Daemon → controller: a created process changed state.
struct StateNote {
  std::string machine;  // literal host name of the daemon's machine
  std::int32_t pid = 0;
  std::uint8_t event = 0;  // kernel::ChildEvent value
  std::int32_t status = 0;
};

/// Daemon → controller: output the process wrote to its redirected stdio.
struct IoNote {
  std::string machine;
  std::int32_t pid = 0;
  std::string data;
};

/// Controller → daemon: input for a process's stdin.
struct IoSend {
  std::int32_t uid = 0;
  std::int32_t pid = 0;
  std::string data;
};

/// N creates in one RPC. The items share the job's wiring (filter socket,
/// meter flags, controller notification socket) — exactly the fields that
/// are identical across a job's processes on one machine. The nonce keys
/// the whole batch in the daemon's replay cache: a retried batch returns
/// the cached reply, never a second wave of processes.
struct BatchCreateRequest {
  std::int32_t uid = 0;
  struct Item {
    std::string filename;
    std::vector<std::string> params;
  };
  std::vector<Item> items;
  std::uint16_t filter_port = 0;
  std::string filter_host;
  std::uint32_t meter_flags = 0;
  std::uint16_t control_port = 0;
  std::string control_host;
  std::uint64_t nonce = 0;
};

/// Per-item results, parallel to the request's items. `nonce` echoes the
/// request so a pipelined client can match replies to in-flight calls.
struct BatchCreateReply {
  std::uint64_t nonce = 0;
  std::vector<std::int32_t> pids;      // -1 where the create failed
  std::vector<std::int32_t> statuses;  // 0 ok, else util::Err value
};

/// One process op (start/stop/kill/release — `what` disambiguates, as for
/// ProcRequest) applied to a pid list in one RPC.
struct BatchProcRequest {
  MsgType what = MsgType::start_request;
  std::int32_t uid = 0;
  std::uint64_t nonce = 0;
  std::vector<std::int32_t> pids;
};

struct BatchProcReply {
  std::uint64_t nonce = 0;
  std::vector<std::int32_t> statuses;  // parallel to the request's pids
};

using DaemonMsg =
    std::variant<CreateRequest, CreateReply, FilterRequest, FilterReply,
                 SetFlagsRequest, ProcRequest, AcquireRequest, SimpleReply,
                 StateNote, IoNote, IoSend, BatchCreateRequest,
                 BatchCreateReply, BatchProcRequest, BatchProcReply>;

MsgType msg_type(const DaemonMsg& m);
util::Bytes serialize(const DaemonMsg& m);
std::optional<DaemonMsg> parse(const util::Bytes& wire);

/// Sends one framed message on a connected stream socket.
util::SysResult<void> send_msg(kernel::Sys& sys, kernel::Fd fd,
                               const DaemonMsg& m);

/// Receives one framed message (blocking). econnreset on truncation.
util::SysResult<DaemonMsg> recv_msg(kernel::Sys& sys, kernel::Fd fd);

/// Bounded-wait variant: etimedout if a whole message has not arrived
/// within `deadline`. A truncated message (peer died mid-frame) still
/// fails fast with econnreset — the reader never blocks on a short read.
util::SysResult<DaemonMsg> recv_msg(kernel::Sys& sys, kernel::Fd fd,
                                    util::Duration deadline);

/// Deadline/retry policy for hardened RPC (the controller's default).
/// Every attempt runs on a fresh connection; attempts after the first are
/// counted as daemon.rpc_retries, expired waits as daemon.rpc_timeouts.
struct RpcOptions {
  util::Duration deadline = util::msec(250);  // per attempt: connect + reply
  int max_attempts = 4;
  util::Duration backoff = util::msec(50);    // doubles per retry
  util::Duration backoff_max = util::msec(800);
};

/// One full RPC exchange over a temporary connection (§3.5.1): connect to
/// `to`, send `request`, await the reply, close. Blocks indefinitely.
util::SysResult<DaemonMsg> rpc_call(kernel::Sys& sys, const net::SockAddr& to,
                                    const DaemonMsg& request);

/// Hardened variant: per-attempt deadline, bounded exponential backoff,
/// retry on etimedout/econnrefused/econnreset/epipe. Requests that create
/// state must carry a nonce so a retry cannot double-apply.
util::SysResult<DaemonMsg> rpc_call(kernel::Sys& sys, const net::SockAddr& to,
                                    const DaemonMsg& request,
                                    const RpcOptions& opts);

/// One-shot notification (no reply expected): connect, send, close. The
/// connect is bounded (~250ms) so a dead controller cannot wedge a daemon.
util::SysResult<void> notify(kernel::Sys& sys, const net::SockAddr& to,
                             const DaemonMsg& note);

}  // namespace dpm::daemon
