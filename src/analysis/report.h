// Text rendering of the analysis results — the human-readable reports the
// examples and EXPERIMENTS.md show.
#pragma once

#include <string>

#include "analysis/comm_stats.h"
#include "analysis/diagnose.h"
#include "analysis/ordering.h"
#include "analysis/parallelism.h"
#include "analysis/timeline.h"

namespace dpm::analysis {

std::string render_comm_stats(const CommStats& stats);
std::string render_graph(const CommGraph& graph);
std::string render_ordering(const Trace& trace, const Ordering& ordering);
std::string render_parallelism(const ParallelismProfile& profile);
std::string render_connections(const std::vector<ConnStat>& conns);

/// Runs every analysis over a trace and concatenates the reports.
std::string full_report(const Trace& trace);

}  // namespace dpm::analysis
