// Determinism properties of the simulation: identical seeds produce
// byte-identical traces end to end; different seeds vary timing but
// preserve the logical invariants.
#include <gtest/gtest.h>

#include "analysis/comm_stats.h"
#include "analysis/ordering.h"
#include "apps/apps.h"
#include "control/session.h"
#include "testing.h"

namespace dpm {
namespace {

std::string run_session(std::uint64_t seed) {
  kernel::World world(dpm::testing::quick_config(seed));
  auto machines = dpm::testing::add_machines(world, {"yellow", "red", "green"});
  control::install_monitor(world);
  apps::install_everywhere(world);
  control::spawn_meterdaemons(world);
  control::MonitorSession session(
      world, control::MonitorSession::Options{.host = "yellow", .uid = 100});
  world.run();
  (void)session.drain_output();
  (void)session.command("filter f1 yellow");
  (void)session.command("newjob j");
  (void)session.command("addprocess j red pingpong_server 4890 6");
  (void)session.command("addprocess j green pingpong_client red 4890 6 96");
  (void)session.command("setflags j all");
  (void)session.command("startjob j");
  (void)session.command("removejob j");
  (void)session.command("getlog f1 t");
  return world.machine(machines[0]).fs.read_text("t").value_or("");
}

class DeterminismSweep : public ::testing::TestWithParam<std::uint64_t> {};

INSTANTIATE_TEST_SUITE_P(Seeds, DeterminismSweep,
                         ::testing::Values(1, 7, 42, 1234, 99991));

TEST_P(DeterminismSweep, SameSeedSameTrace) {
  const std::string a = run_session(GetParam());
  const std::string b = run_session(GetParam());
  ASSERT_FALSE(a.empty());
  EXPECT_EQ(a, b);  // byte-identical, including every timestamp
}

TEST_P(DeterminismSweep, InvariantsHoldForEverySeed) {
  const analysis::Trace trace = analysis::read_trace(run_session(GetParam()));
  ASSERT_GT(trace.events.size(), 0u);
  EXPECT_EQ(trace.malformed, 0u);

  // Logical structure is seed-independent: same processes, same message
  // counts, same graph shape — only timestamps move.
  const analysis::CommStats stats = analysis::communication_statistics(trace);
  EXPECT_EQ(stats.per_process.size(), 2u);
  ASSERT_EQ(stats.graph.edges.size(), 2u);
  for (const auto& e : stats.graph.edges) {
    EXPECT_EQ(e.messages, 6u);
    EXPECT_EQ(e.bytes, 6u * 96u);
  }

  const analysis::Ordering ordering = analysis::order_events(trace);
  EXPECT_EQ(ordering.message_pairs, 12u);
  EXPECT_FALSE(ordering.had_cycle);

  // Per-process meter records arrive in per-process order: cpuTime is
  // monotone within a process (one machine's clock never runs backwards).
  std::map<analysis::ProcKey, std::int64_t> last;
  for (const auto& e : trace.events) {
    auto [it, fresh] = last.try_emplace(e.proc(), e.cpu_time);
    if (!fresh) {
      EXPECT_LE(it->second, e.cpu_time);
      it->second = e.cpu_time;
    }
  }
}

TEST(Determinism, DifferentSeedsChangeTiming) {
  const std::string a = run_session(1);
  const std::string b = run_session(2);
  EXPECT_NE(a, b);  // clocks and jitter differ
}

}  // namespace
}  // namespace dpm
