// MeterRing: the SPSC byte ring behind the fast meter transport. The
// contracts under test are exactly the ones conservation depends on —
// FIFO byte identity with the legacy serialize path, whole-or-nothing
// push (overflow drops, never truncates), wrap-transparent reads, and
// wire_size() agreeing with serialize() for every message shape.
#include "meter/ring.h"

#include <deque>

#include <gtest/gtest.h>

#include "meter/metermsgs.h"
#include "util/rng.h"

namespace dpm::meter {
namespace {

std::string random_name(util::Rng& rng) {
  if (rng.bernoulli(0.15)) return "";
  return std::to_string(rng.uniform(0, 300000));
}

/// A random message drawn from all ten event types (the record_view
/// property-test generator, so ring coverage matches filter coverage).
MeterMsg random_msg(util::Rng& rng) {
  MeterMsg m;
  const Pid pid = static_cast<Pid>(rng.uniform(1, 30));
  const SocketId sock = rng.uniform(0, 8);
  switch (rng.uniform(0, 10)) {
    case 0:
      m.body = MeterSend{pid, 0, sock,
                         static_cast<std::uint32_t>(rng.uniform(0, 2048)),
                         random_name(rng)};
      break;
    case 1:
      m.body = MeterRecv{pid, 0, sock,
                         static_cast<std::uint32_t>(rng.uniform(0, 2048)),
                         random_name(rng)};
      break;
    case 2: m.body = MeterRecvCall{pid, 0, sock}; break;
    case 3:
      m.body = MeterSockCrt{pid, 0, sock, 2, 1, 0};
      break;
    case 4: m.body = MeterDup{pid, 0, sock, sock + 1}; break;
    case 5: m.body = MeterDestSock{pid, 0, sock}; break;
    case 6: m.body = MeterFork{pid, 0, static_cast<Pid>(pid + 1)}; break;
    case 7:
      m.body = MeterAccept{pid, 0, sock, sock + 1, random_name(rng),
                           random_name(rng)};
      break;
    case 8:
      m.body = MeterConnect{pid, 0, sock, random_name(rng), random_name(rng)};
      break;
    default: m.body = MeterTermProc{pid, 0, 0}; break;
  }
  m.header.machine = static_cast<std::uint16_t>(rng.uniform(0, 6));
  m.header.cpu_time = rng.uniform(0, 20000);
  m.header.proc_time = rng.uniform(0, 1000);
  return m;
}

TEST(MeterRing, WireSizeMatchesSerializedSizeForEveryShape) {
  // wire_size() is what the producer reserves (or drops) by; if it ever
  // disagrees with the actual encoding the ring either wedges or leaks.
  util::Rng rng(4242);
  for (int i = 0; i < 2000; ++i) {
    const MeterMsg m = random_msg(rng);
    EXPECT_EQ(m.wire_size(), m.serialize().size()) << m.pretty();
  }
}

TEST(MeterRing, PushedBytesEqualSerializedBytes) {
  util::Rng rng(7);
  MeterRing ring(4096);
  util::Bytes expect;
  for (int i = 0; i < 20; ++i) {
    const MeterMsg m = random_msg(rng);
    const std::size_t n = ring.push(m);
    ASSERT_EQ(n, m.wire_size());
    m.serialize_into(expect);
  }
  util::Bytes got;
  EXPECT_EQ(ring.pop(got, expect.size() + 100), expect.size());
  EXPECT_EQ(got, expect);
  EXPECT_TRUE(ring.empty());
}

TEST(MeterRing, FifoUnderRandomInterleaveIncludingWrap) {
  // Property: against a reference byte deque, any interleave of pushes
  // and partial pops reads back the identical byte stream — including
  // when records wrap the end of storage.
  for (std::uint64_t seed : {1u, 2u, 3u, 4u, 5u}) {
    util::Rng rng(seed * 1031);
    MeterRing ring(256);  // small: wraps constantly
    std::deque<std::uint8_t> reference;
    int wraps_exercised = 0;
    for (int step = 0; step < 4000; ++step) {
      if (rng.bernoulli(0.55)) {
        const MeterMsg m = random_msg(rng);
        const util::Bytes wire = m.serialize();
        const std::size_t before = ring.free();
        const std::size_t n = ring.push(m);
        if (wire.size() <= before) {
          ASSERT_EQ(n, wire.size());
          reference.insert(reference.end(), wire.begin(), wire.end());
          if (ring.spans()[1].size > 0) ++wraps_exercised;
        } else {
          // Overflow: whole-or-nothing, ring untouched.
          ASSERT_EQ(n, 0u);
          ASSERT_EQ(ring.free(), before);
        }
      } else {
        util::Bytes out;
        const std::size_t want = 1 + rng.uniform(0, 96);
        const std::size_t got = ring.pop(out, want);
        ASSERT_EQ(got, std::min(want, reference.size()));
        ASSERT_EQ(out.size(), got);
        for (std::size_t i = 0; i < got; ++i) {
          ASSERT_EQ(out[i], reference.front()) << "seed " << seed;
          reference.pop_front();
        }
      }
      ASSERT_EQ(ring.size(), reference.size());
    }
    EXPECT_GT(wraps_exercised, 0) << "seed " << seed;
  }
}

TEST(MeterRing, WrappedRecordReadsBackIdenticalToContiguousRecord) {
  // The same record pushed through the wrap path (two memcpys via
  // scratch) and the in-place path must produce identical bytes.
  util::Rng rng(99);
  const MeterMsg m = random_msg(rng);
  const util::Bytes wire = m.serialize();

  MeterRing contiguous(512);
  ASSERT_EQ(contiguous.push(m), wire.size());

  MeterRing wrapped(wire.size() + 8);  // capacity barely above one record
  util::Bytes pad(wire.size() - 4, 0xab);
  ASSERT_TRUE(wrapped.push_bytes(pad.data(), pad.size()));
  util::Bytes sink;
  ASSERT_EQ(wrapped.pop(sink, pad.size() - 2), pad.size() - 2);
  ASSERT_EQ(wrapped.push(m), wire.size());  // tail region too short: wraps
  ASSERT_GT(wrapped.spans()[1].size, 0u);

  util::Bytes a, b;
  (void)contiguous.pop(a, 4096);
  (void)wrapped.pop(b, 4096);
  ASSERT_EQ(b.size(), 2 + wire.size());
  b.erase(b.begin(), b.begin() + 2);  // the pad remainder
  EXPECT_EQ(a, wire);
  EXPECT_EQ(b, wire);
}

TEST(MeterRing, OversizedRecordIsRefusedWholeNotTruncated) {
  // Satellite: a record larger than the remaining (or total) capacity is
  // refused with the ring untouched — push never writes a partial record
  // the frame cursor would misparse.
  MeterMsg m;
  m.body = MeterAccept{1, 0, 2, 3, std::string(300, 'x'), std::string(300, 'y')};
  MeterRing tiny(64);
  ASSERT_GT(m.wire_size(), tiny.capacity());
  EXPECT_EQ(tiny.push(m), 0u);
  EXPECT_TRUE(tiny.empty());
  EXPECT_EQ(tiny.spans()[0].size, 0u);

  // Partially full: same refusal when only the *remaining* space is short.
  MeterRing ring(m.wire_size() + 16);
  MeterMsg small;
  small.body = MeterDestSock{1, 0, 2};
  ASSERT_GT(ring.push(small), 0u);
  const std::size_t used = ring.size();
  EXPECT_EQ(ring.push(m), 0u);
  EXPECT_EQ(ring.size(), used);  // nothing half-written
  util::Bytes out;
  (void)ring.pop(out, 4096);
  EXPECT_EQ(out, small.serialize());  // first record still intact
}

TEST(MeterRing, DrainResetsWakeupDebtAndRewindsHead) {
  util::Rng rng(17);
  MeterRing ring(1024);
  const MeterMsg m = random_msg(rng);
  ASSERT_GT(ring.push(m), 0u);
  ring.unsignalled_bytes = ring.size();
  ring.unsignalled_records = 1;
  util::Bytes out;
  (void)ring.pop(out, 4096);
  EXPECT_TRUE(ring.empty());
  EXPECT_EQ(ring.unsignalled_bytes, 0u);
  EXPECT_EQ(ring.unsignalled_records, 0u);
  // Rewound: the next record lands contiguously at offset 0.
  ASSERT_GT(ring.push(m), 0u);
  EXPECT_EQ(ring.spans()[1].size, 0u);
}

TEST(MeterRing, SpanWriterRefusesOverflowInsteadOfTruncating) {
  // The in-place encode contract push() relies on: a span writer that
  // runs out of capacity flips ok() to false, keeps counting the bytes
  // the encode would have needed, and never writes past the region.
  MeterMsg m;
  m.body = MeterConnect{7, 0, 3, "123456", "654321"};
  const util::Bytes wire = m.serialize();
  ASSERT_GT(wire.size(), 8u);

  util::Bytes region(wire.size(), 0xcd);
  util::BinaryWriter short_w(region.data(), 8);
  m.encode_into(short_w);
  EXPECT_FALSE(short_w.ok());
  EXPECT_EQ(short_w.size(), wire.size());  // needed capacity, not clipped
  for (std::size_t i = 8; i < region.size(); ++i) {
    ASSERT_EQ(region[i], 0xcd) << "wrote past capacity at " << i;
  }

  util::BinaryWriter exact_w(region.data(), region.size());
  m.encode_into(exact_w);
  EXPECT_TRUE(exact_w.ok());
  EXPECT_EQ(exact_w.size(), wire.size());
  EXPECT_EQ(region, wire);  // back-patched size word included
}

}  // namespace
}  // namespace dpm::meter
