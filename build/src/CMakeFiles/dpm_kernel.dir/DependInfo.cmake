
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/kernel/descriptor.cc" "src/CMakeFiles/dpm_kernel.dir/kernel/descriptor.cc.o" "gcc" "src/CMakeFiles/dpm_kernel.dir/kernel/descriptor.cc.o.d"
  "/root/repo/src/kernel/exec_registry.cc" "src/CMakeFiles/dpm_kernel.dir/kernel/exec_registry.cc.o" "gcc" "src/CMakeFiles/dpm_kernel.dir/kernel/exec_registry.cc.o.d"
  "/root/repo/src/kernel/file_system.cc" "src/CMakeFiles/dpm_kernel.dir/kernel/file_system.cc.o" "gcc" "src/CMakeFiles/dpm_kernel.dir/kernel/file_system.cc.o.d"
  "/root/repo/src/kernel/meter_hooks.cc" "src/CMakeFiles/dpm_kernel.dir/kernel/meter_hooks.cc.o" "gcc" "src/CMakeFiles/dpm_kernel.dir/kernel/meter_hooks.cc.o.d"
  "/root/repo/src/kernel/process.cc" "src/CMakeFiles/dpm_kernel.dir/kernel/process.cc.o" "gcc" "src/CMakeFiles/dpm_kernel.dir/kernel/process.cc.o.d"
  "/root/repo/src/kernel/socket.cc" "src/CMakeFiles/dpm_kernel.dir/kernel/socket.cc.o" "gcc" "src/CMakeFiles/dpm_kernel.dir/kernel/socket.cc.o.d"
  "/root/repo/src/kernel/syscalls.cc" "src/CMakeFiles/dpm_kernel.dir/kernel/syscalls.cc.o" "gcc" "src/CMakeFiles/dpm_kernel.dir/kernel/syscalls.cc.o.d"
  "/root/repo/src/kernel/world.cc" "src/CMakeFiles/dpm_kernel.dir/kernel/world.cc.o" "gcc" "src/CMakeFiles/dpm_kernel.dir/kernel/world.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/dpm_net.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/dpm_meter.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/dpm_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/dpm_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
