#include "filter/trace.h"

#include <gtest/gtest.h>

namespace dpm::filter {
namespace {

Record sample_record() {
  Record r;
  r.event_name = "SEND";
  r.type = 1;
  r.fields = {{"size", std::int64_t{50}},
              {"machine", std::int64_t{0}},
              {"cpuTime", std::int64_t{12345}},
              {"type", std::int64_t{1}},
              {"pid", std::int64_t{7}},
              {"destName", std::string{"228320140"}}};
  return r;
}

TEST(Trace, LineRoundTrip) {
  const std::string line = trace_line(sample_record(), {});
  EXPECT_EQ(line.back(), '\n');
  auto parsed = parse_trace_line(line);
  ASSERT_TRUE(parsed.has_value());
  EXPECT_EQ(parsed->event_name, "SEND");
  EXPECT_EQ(parsed->type, 1u);
  EXPECT_EQ(parsed->num("pid").value(), 7);
  EXPECT_EQ(parsed->text("destName").value(), "228320140");
}

TEST(Trace, DiscardedFieldsAreOmitted) {
  const std::string line = trace_line(sample_record(), {"pid", "machine"});
  auto parsed = parse_trace_line(line);
  ASSERT_TRUE(parsed.has_value());
  EXPECT_EQ(parsed->find("pid"), nullptr);
  EXPECT_EQ(parsed->find("machine"), nullptr);
  EXPECT_NE(parsed->find("cpuTime"), nullptr);
  // Discarding reduces the saved size (the point of '#', §3.4).
  EXPECT_LT(line.size(), trace_line(sample_record(), {}).size());
}

TEST(Trace, EscapesAwkwardValues) {
  Record r;
  r.event_name = "SEND";
  r.fields = {{"destName", std::string{"a b=c"}}};
  const std::string line = trace_line(r, {});
  auto parsed = parse_trace_line(line);
  ASSERT_TRUE(parsed.has_value());
  EXPECT_EQ(parsed->text("destName").value(), "a b=c");
}

TEST(Trace, ParseWholeFile) {
  std::string file = trace_line(sample_record(), {}) +
                     "# comment line\n"
                     "\n" +
                     trace_line(sample_record(), {"pid"}) + "not a record\n";
  ParsedTrace t = parse_trace(file);
  EXPECT_EQ(t.records.size(), 2u);
  EXPECT_EQ(t.malformed, 1u);
}

TEST(Trace, LogPath) {
  EXPECT_EQ(log_path_for("f1"), "/usr/tmp/f1.log");
}

}  // namespace
}  // namespace dpm::filter
