add_test([=[Umbrella.EverySubsystemIsReachable]=]  /root/repo/build/tests/umbrella_test [==[--gtest_filter=Umbrella.EverySubsystemIsReachable]==] --gtest_also_run_disabled_tests)
set_tests_properties([=[Umbrella.EverySubsystemIsReachable]=]  PROPERTIES WORKING_DIRECTORY /root/repo/build/tests SKIP_REGULAR_EXPRESSION [==[\[  SKIPPED \]]==])
set(  umbrella_test_TESTS Umbrella.EverySubsystemIsReachable)
