#include "util/bytes.h"

#include <gtest/gtest.h>

namespace dpm::util {
namespace {

TEST(BinaryWriter, LittleEndianLayout) {
  BinaryWriter w;
  w.u8(0xab);
  w.u16(0x1234);
  w.u32(0xdeadbeef);
  const Bytes& b = w.bytes();
  ASSERT_EQ(b.size(), 7u);
  EXPECT_EQ(b[0], 0xab);
  EXPECT_EQ(b[1], 0x34);
  EXPECT_EQ(b[2], 0x12);
  EXPECT_EQ(b[3], 0xef);
  EXPECT_EQ(b[4], 0xbe);
  EXPECT_EQ(b[5], 0xad);
  EXPECT_EQ(b[6], 0xde);
}

TEST(BinaryRoundTrip, AllWidths) {
  BinaryWriter w;
  w.u8(7);
  w.u16(65535);
  w.u32(4000000000u);
  w.u64(0x0123456789abcdefULL);
  w.i32(-42);
  w.i64(-1234567890123LL);
  w.lstring("hello");
  w.fixed_string("ab", 4);

  BinaryReader r(w.bytes());
  EXPECT_EQ(r.u8().value(), 7);
  EXPECT_EQ(r.u16().value(), 65535);
  EXPECT_EQ(r.u32().value(), 4000000000u);
  EXPECT_EQ(r.u64().value(), 0x0123456789abcdefULL);
  EXPECT_EQ(r.i32().value(), -42);
  EXPECT_EQ(r.i64().value(), -1234567890123LL);
  EXPECT_EQ(r.lstring().value(), "hello");
  EXPECT_EQ(r.fixed_string(4).value(), "ab");
  EXPECT_EQ(r.remaining(), 0u);
  EXPECT_TRUE(r.ok());
}

TEST(BinaryReader, FailsPastEndAndStaysFailed) {
  BinaryWriter w;
  w.u16(9);
  BinaryReader r(w.bytes());
  EXPECT_TRUE(r.u8().has_value());
  EXPECT_FALSE(r.u32().has_value());
  EXPECT_FALSE(r.ok());
  EXPECT_FALSE(r.u8().has_value());  // stays failed
}

TEST(BinaryReader, LstringLengthBeyondBufferFails) {
  BinaryWriter w;
  w.u32(1000);  // claims 1000 bytes follow
  w.u8('x');
  BinaryReader r(w.bytes());
  EXPECT_FALSE(r.lstring().has_value());
}

TEST(BinaryWriter, PatchU32) {
  BinaryWriter w;
  w.u32(0);
  w.lstring("payload");
  w.patch_u32(0, static_cast<std::uint32_t>(w.size()));
  BinaryReader r(w.bytes());
  EXPECT_EQ(r.u32().value(), w.size());
}

TEST(BinaryWriter, FixedStringTruncates) {
  BinaryWriter w;
  w.fixed_string("abcdef", 3);
  EXPECT_EQ(w.size(), 3u);
  BinaryReader r(w.bytes());
  EXPECT_EQ(r.fixed_string(3).value(), "abc");
}

TEST(Bytes, StringConversionRoundTrip) {
  const std::string s = "some\0binary\ndata";
  EXPECT_EQ(to_string(to_bytes(s)), s);
}

TEST(HexDump, TruncatesLongBuffers) {
  Bytes b(100, 0xaa);
  const std::string d = hex_dump(b, 4);
  EXPECT_EQ(d, "aa aa aa aa ...");
}

}  // namespace
}  // namespace dpm::util
