#include "meter/ring.h"

#include <cassert>
#include <cstring>

namespace dpm::meter {

MeterRing::MeterRing(std::size_t capacity_bytes)
    : buf_(capacity_bytes > 0 ? capacity_bytes : 1, 0) {}

std::size_t MeterRing::push(const MeterMsg& msg) {
  const std::size_t n = msg.wire_size();
  if (n == 0 || n > free()) return 0;
  const std::size_t cap = buf_.size();
  const std::size_t tail = (head_ + used_) % cap;
  if (cap - tail >= n) {
    // Common case: the record fits the contiguous tail region, so encode
    // straight into ring storage. The span writer cannot pass `n`; if the
    // encode disagrees with wire_size() it fails whole, never truncated.
    util::BinaryWriter w(buf_.data() + tail, n);
    msg.encode_into(w);
    if (!w.ok() || w.size() != n) return 0;
  } else {
    // Wrap case: stage once, then split into two copies.
    scratch_.clear();
    msg.serialize_into(scratch_);
    if (scratch_.size() != n) return 0;
    const std::size_t first = cap - tail;
    std::memcpy(buf_.data() + tail, scratch_.data(), first);
    std::memcpy(buf_.data(), scratch_.data() + first, n - first);
  }
  used_ += n;
  return n;
}

bool MeterRing::push_bytes(const std::uint8_t* data, std::size_t n) {
  if (n > free()) return false;
  const std::size_t cap = buf_.size();
  const std::size_t tail = (head_ + used_) % cap;
  const std::size_t first = n < cap - tail ? n : cap - tail;
  if (first != 0) std::memcpy(buf_.data() + tail, data, first);
  if (n - first != 0) std::memcpy(buf_.data(), data + first, n - first);
  used_ += n;
  return true;
}

std::size_t MeterRing::pop(util::Bytes& out, std::size_t max) {
  const std::size_t n = max < used_ ? max : used_;
  const std::size_t cap = buf_.size();
  std::size_t taken = 0;
  while (taken < n) {
    const std::size_t run = cap - head_;
    const std::size_t chunk = (n - taken) < run ? (n - taken) : run;
    out.insert(out.end(), buf_.data() + head_, buf_.data() + head_ + chunk);
    head_ = (head_ + chunk) % cap;
    taken += chunk;
  }
  used_ -= n;
  if (used_ == 0) {
    // Fully drained: rewind so the next records encode contiguously, and
    // retire any pending wakeup debt — the consumer is caught up.
    head_ = 0;
    unsignalled_bytes = 0;
    unsignalled_records = 0;
  }
  return n;
}

std::array<MeterRing::Span, 2> MeterRing::spans() const {
  const std::size_t cap = buf_.size();
  const std::size_t first = used_ < cap - head_ ? used_ : cap - head_;
  return {Span{buf_.data() + head_, first},
          Span{buf_.data(), used_ - first}};
}

void MeterRing::clear() {
  head_ = 0;
  used_ = 0;
  unsignalled_bytes = 0;
  unsignalled_records = 0;
}

}  // namespace dpm::meter
