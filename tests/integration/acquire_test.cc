// The acquire path (§4.3): metering an already-running system server
// without touching its execution environment; release on removal.
#include <gtest/gtest.h>

#include "analysis/trace_reader.h"
#include "apps/apps.h"
#include "control/session.h"
#include "testing.h"
#include "util/strings.h"

namespace dpm {
namespace {

class AcquireTest : public ::testing::Test {
 protected:
  AcquireTest() : world_(dpm::testing::quick_config(17)) {
    machines_ = dpm::testing::add_machines(world_, {"yellow", "red", "green"});
    control::install_monitor(world_);
    apps::install_everywhere(world_);
    control::spawn_meterdaemons(world_);
    world_.add_account_everywhere(100);
    // A long-running "system server" already executing on red, owned by
    // the same user (acquire requires access rights).
    auto r = world_.spawn(machines_[1], "echo_server", 100,
                          apps::make_echo_server({"echo_server", "7", "0"}));
    EXPECT_TRUE(r.ok());
    server_pid_ = r.value_or(0);
    session_ = std::make_unique<control::MonitorSession>(
        world_, control::MonitorSession::Options{.host = "yellow", .uid = 100});
    world_.run();
    (void)session_->drain_output();
  }

  kernel::World world_;
  std::vector<kernel::MachineId> machines_;
  kernel::Pid server_pid_ = 0;
  std::unique_ptr<control::MonitorSession> session_;
};

TEST_F(AcquireTest, AcquireMeterReleaseServerSurvives) {
  (void)session_->command("filter f1");
  (void)session_->command("newjob watch");
  (void)session_->command("setflags watch send receive");
  std::string out = session_->command(util::strprintf(
      "acquire watch red %d", server_pid_));
  EXPECT_NE(out.find("acquired"), std::string::npos) << out;

  // Traffic to the acquired server from an unmetered client.
  (void)world_.spawn(machines_[2], "client", 100,
                     apps::make_echo_client({"echo_client", "red", "7", "4",
                                             "16"}));
  world_.run();

  // jobs shows the acquired state.
  out = session_->command("jobs watch");
  EXPECT_NE(out.find("acquired"), std::string::npos) << out;

  // Remove the job: the meter connection comes down but the server keeps
  // executing (§4.3 removejob).
  out = session_->command("removejob watch");
  EXPECT_NE(out.find("removed"), std::string::npos) << out;
  kernel::Process* server = world_.find_process(machines_[1], server_pid_);
  ASSERT_NE(server, nullptr);
  EXPECT_EQ(server->status, kernel::ProcStatus::alive);
  EXPECT_EQ(server->meter_sock, 0u);  // metering taken down
  EXPECT_EQ(server->meter_flags, 0u);

  // The trace captured the server's sends and receives.
  (void)session_->command("getlog f1 t");
  auto text = world_.machine(machines_[0]).fs.read_text("t");
  ASSERT_TRUE(text.has_value());
  analysis::Trace trace = analysis::read_trace(*text);
  int recvs = 0, sends = 0;
  for (const auto& e : trace.events) {
    if (e.pid != server_pid_) continue;
    if (e.type == meter::EventType::recv) ++recvs;
    if (e.type == meter::EventType::send) ++sends;
  }
  EXPECT_EQ(recvs, 4);
  EXPECT_EQ(sends, 4);
}

TEST_F(AcquireTest, AcquireCannotBeStartedOrStopped) {
  (void)session_->command("filter f1");
  (void)session_->command("newjob watch");
  (void)session_->command(util::strprintf("acquire watch red %d", server_pid_));
  std::string out = session_->command("startjob watch");
  EXPECT_NE(out.find("cannot be started"), std::string::npos) << out;
  // stopjob ignores acquired processes entirely.
  out = session_->command("stopjob watch");
  EXPECT_EQ(out.find("stopped."), std::string::npos) << out;
  kernel::Process* server = world_.find_process(machines_[1], server_pid_);
  EXPECT_EQ(server->status, kernel::ProcStatus::alive);
  EXPECT_FALSE(server->stop_requested);
}

TEST_F(AcquireTest, RemoveprocessReleasesAcquired) {
  (void)session_->command("filter f1");
  (void)session_->command("newjob watch");
  (void)session_->command("setflags watch send");
  (void)session_->command(util::strprintf("acquire watch red %d", server_pid_));
  kernel::Process* server = world_.find_process(machines_[1], server_pid_);
  ASSERT_NE(server, nullptr);
  EXPECT_NE(server->meter_sock, 0u);
  std::string out = session_->command(
      util::strprintf("removeprocess watch pid%d", server_pid_));
  EXPECT_NE(out.find("removed"), std::string::npos) << out;
  // Metering is gone, the server is not.
  EXPECT_EQ(server->meter_sock, 0u);
  EXPECT_EQ(server->meter_flags, 0u);
  EXPECT_EQ(server->status, kernel::ProcStatus::alive);
}

TEST_F(AcquireTest, AcquireUnknownPidFails) {
  (void)session_->command("filter f1");
  (void)session_->command("newjob watch");
  std::string out = session_->command("acquire watch red 9999");
  EXPECT_NE(out.find("not acquired"), std::string::npos) << out;
}

TEST_F(AcquireTest, AcquireForeignProcessDenied) {
  // A server owned by another user cannot be acquired by uid 100.
  auto other = world_.spawn(machines_[1], "other_server", 0,
                            apps::make_echo_server({"echo_server", "9", "0"}));
  ASSERT_TRUE(other.ok());
  world_.run();
  (void)session_->command("filter f1");
  (void)session_->command("newjob watch");
  std::string out =
      session_->command(util::strprintf("acquire watch red %d", *other));
  EXPECT_NE(out.find("not acquired"), std::string::npos) << out;
}

}  // namespace
}  // namespace dpm
