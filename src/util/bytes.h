// Byte buffers and fixed-layout binary serialization.
//
// Meter messages and daemon protocol messages are defined by *byte layout*
// (the filter locates fields by offset/length, exactly as the paper's
// description files do), so serialization is explicit little-endian with
// fixed widths — never memcpy of structs.
#pragma once

#include <cstddef>
#include <cstdint>
#include <cstring>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

namespace dpm::util {

using Bytes = std::vector<std::uint8_t>;

/// Appends fixed-width little-endian values to a byte vector. Three modes:
/// the default constructor writes into an internal buffer (take() moves it
/// out); the Bytes& constructor appends to a caller-owned buffer in place
/// (zero-copy serialization into an existing batch); the span constructor
/// encodes into a caller-owned fixed region (zero-copy serialization into
/// ring-buffer storage). In the latter two modes size() and patch_u32()
/// are relative to where this writer started, so back-patched size words
/// work identically in all modes.
///
/// The span mode never writes past the given capacity: an oversized write
/// is diverted to an internal discard buffer, ok() turns false, and the
/// caller must abandon the output — a record is encoded whole or not at
/// all, never truncated at the capacity edge.
class BinaryWriter {
 public:
  BinaryWriter() : out_(&own_) {}
  /// Appends to `out` (which must outlive the writer); take() is invalid.
  explicit BinaryWriter(Bytes& out) : out_(&out), base_(out.size()) {}
  /// Encodes into the fixed region [data, data+cap); take()/bytes() are
  /// invalid. size() keeps counting attempted bytes past `cap`, so after
  /// an overflow it reports the capacity the encode would have needed.
  BinaryWriter(std::uint8_t* data, std::size_t cap)
      : out_(&own_), fixed_(data), fixed_cap_(cap) {}

  // The value writers are inline: they run per field on the meter's
  // per-event encode path, where the call itself would dominate the store.
  void u8(std::uint8_t v) { *grow(1) = v; }
  void u16(std::uint16_t v) {
    std::uint8_t* p = grow(2);
    p[0] = static_cast<std::uint8_t>(v & 0xff);
    p[1] = static_cast<std::uint8_t>(v >> 8);
  }
  void u32(std::uint32_t v) {
    std::uint8_t* p = grow(4);
    for (int i = 0; i < 4; ++i) {
      p[i] = static_cast<std::uint8_t>(v & 0xff);
      v >>= 8;
    }
  }
  void u64(std::uint64_t v) {
    std::uint8_t* p = grow(8);
    for (int i = 0; i < 8; ++i) {
      p[i] = static_cast<std::uint8_t>(v & 0xff);
      v >>= 8;
    }
  }
  void i32(std::int32_t v) { u32(static_cast<std::uint32_t>(v)); }
  void i64(std::int64_t v) { u64(static_cast<std::uint64_t>(v)); }
  /// Raw bytes, no length prefix.
  void raw(const std::uint8_t* data, std::size_t n) {
    if (n != 0) std::memcpy(grow(n), data, n);
  }
  void raw(const Bytes& b) { raw(b.data(), b.size()); }
  /// u32 length prefix followed by the bytes of `s`.
  void lstring(std::string_view s) {
    std::uint8_t* p = grow(4 + s.size());
    auto len = static_cast<std::uint32_t>(s.size());
    for (int i = 0; i < 4; ++i) {
      p[i] = static_cast<std::uint8_t>(len & 0xff);
      len >>= 8;
    }
    if (!s.empty()) std::memcpy(p + 4, s.data(), s.size());
  }
  /// Exactly `width` bytes: `s` truncated or zero-padded (fixed-layout field).
  void fixed_string(std::string_view s, std::size_t width);

  /// Overwrites a previously written u32 at `at` (for back-patched sizes).
  /// `at` counts from where this writer started appending.
  void patch_u32(std::size_t at, std::uint32_t v);

  /// Bytes written by this writer (not the whole target buffer).
  std::size_t size() const {
    return fixed_ != nullptr ? fixed_pos_ : out_->size() - base_;
  }
  /// False only in span mode after a write would have passed capacity.
  bool ok() const { return !overflow_; }
  const Bytes& bytes() const& { return *out_; }
  Bytes take();

 private:
  /// Extends the buffer by `n` bytes and returns a pointer to the new
  /// region: one capacity check per value/span instead of one per byte
  /// (this writer sits on the meter's per-event encode path).
  std::uint8_t* grow(std::size_t n) {
    if (fixed_ != nullptr) {
      if (overflow_ || n > fixed_cap_ - fixed_pos_ || fixed_pos_ > fixed_cap_) {
        return grow_overflow(n);
      }
      std::uint8_t* p = fixed_ + fixed_pos_;
      fixed_pos_ += n;
      return p;
    }
    const std::size_t at = out_->size();
    out_->resize(at + n);
    return out_->data() + at;
  }
  /// Span-overflow slow path: fail safe into a discard buffer.
  std::uint8_t* grow_overflow(std::size_t n);

  Bytes own_;
  Bytes* out_;
  std::size_t base_ = 0;
  std::uint8_t* fixed_ = nullptr;
  std::size_t fixed_cap_ = 0;
  std::size_t fixed_pos_ = 0;
  bool overflow_ = false;
};

/// Bounds-checked reader over a byte span. All getters return nullopt past
/// the end; once a read fails the reader stays failed (`ok()` is false).
class BinaryReader {
 public:
  explicit BinaryReader(const Bytes& b) : data_(b.data()), size_(b.size()) {}
  BinaryReader(const std::uint8_t* data, std::size_t size)
      : data_(data), size_(size) {}

  std::optional<std::uint8_t> u8();
  std::optional<std::uint16_t> u16();
  std::optional<std::uint32_t> u32();
  std::optional<std::uint64_t> u64();
  std::optional<std::int32_t> i32();
  std::optional<std::int64_t> i64();
  std::optional<Bytes> raw(std::size_t n);
  std::optional<std::string> lstring();
  /// Reads `width` bytes and strips trailing NULs (fixed-layout field).
  std::optional<std::string> fixed_string(std::size_t width);

  bool ok() const { return !failed_; }
  std::size_t remaining() const { return size_ - pos_; }
  std::size_t pos() const { return pos_; }
  void skip(std::size_t n);

 private:
  bool need(std::size_t n);
  const std::uint8_t* data_;
  std::size_t size_;
  std::size_t pos_ = 0;
  bool failed_ = false;
};

/// Hex dump ("de ad be ef") of at most `max_bytes` bytes, for diagnostics.
std::string hex_dump(const Bytes& b, std::size_t max_bytes = 64);

Bytes to_bytes(std::string_view s);
std::string to_string(const Bytes& b);

}  // namespace dpm::util
