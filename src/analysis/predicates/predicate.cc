#include "analysis/predicates/predicate.h"

#include <algorithm>
#include <array>

#include "util/strings.h"

namespace dpm::analysis::pred {
namespace {

/// The state-field universe: every Event member the standard meter can
/// carry, named as the trace/description files name them, plus `type`.
/// Order is the FieldId assignment.
struct FieldInfo {
  std::string_view name;
  bool numeric;
};
constexpr std::array<FieldInfo, 15> kFields = {{
    {"type", false},  // event name; numeric spec values resolve at compile
    {"machine", true},
    {"cpuTime", true},
    {"procTime", true},
    {"pid", true},
    {"pc", true},
    {"sock", true},
    {"newSock", true},
    {"msgLength", true},
    {"newPid", true},
    {"status", true},
    {"destName", false},
    {"sourceName", false},
    {"sockName", false},
    {"peerName", false},
}};

bool set_error(std::string* error, std::string msg) {
  if (error != nullptr) *error = std::move(msg);
  return false;
}

std::optional<filter::CmpOp> parse_op(std::string_view tok) {
  if (tok == "=") return filter::CmpOp::eq;
  if (tok == "!=") return filter::CmpOp::ne;
  if (tok == "<") return filter::CmpOp::lt;
  if (tok == ">") return filter::CmpOp::gt;
  if (tok == "<=") return filter::CmpOp::le;
  if (tok == ">=") return filter::CmpOp::ge;
  return std::nullopt;
}

/// Splits "field OP value" at the first operator character.
std::optional<StateClause> parse_clause(std::string_view text,
                                        std::string* error) {
  const std::size_t op_at = text.find_first_of("=!<>");
  if (op_at == std::string_view::npos || op_at == 0) {
    set_error(error, "clause '" + std::string(text) +
                         "' lacks an operator (=, !=, <, >, <=, >=)");
    return std::nullopt;
  }
  std::size_t op_len = 1;
  if (op_at + 1 < text.size() && text[op_at + 1] == '=') op_len = 2;
  const auto op = parse_op(text.substr(op_at, op_len));
  if (!op) {
    set_error(error, "bad operator in clause '" + std::string(text) + "'");
    return std::nullopt;
  }
  StateClause c;
  c.field = std::string(util::trim(text.substr(0, op_at)));
  c.op = *op;
  const std::string value{util::trim(text.substr(op_at + op_len))};
  if (value.empty()) {
    set_error(error, "clause '" + std::string(text) + "' lacks a value");
    return std::nullopt;
  }
  if (value == "*") {
    if (c.op != filter::CmpOp::eq) {
      set_error(error, "wildcard '*' is only meaningful with '='");
      return std::nullopt;
    }
    c.wildcard = true;
  } else {
    c.value = value;
  }
  return c;
}

/// "<machine>:<pid>", "<machine>:*", or "*". The leading '@' is the
/// caller's.
std::optional<ProcSelector> parse_selector(std::string_view text,
                                           std::string* error) {
  ProcSelector sel;
  if (text == "*") return sel;
  const std::size_t colon = text.find(':');
  if (colon == std::string_view::npos) {
    set_error(error, "selector '@" + std::string(text) +
                         "' is not machine:pid, machine:*, or *");
    return std::nullopt;
  }
  const std::string_view m = text.substr(0, colon);
  const std::string_view p = text.substr(colon + 1);
  if (m != "*") {
    const auto mv = util::parse_int(m);
    if (!mv || *mv < 0 || *mv > 0xffff) {
      set_error(error, "bad machine in selector '@" + std::string(text) + "'");
      return std::nullopt;
    }
    sel.machine = static_cast<std::uint16_t>(*mv);
  }
  if (p != "*") {
    const auto pv = util::parse_int(p);
    if (!pv) {
      set_error(error, "bad pid in selector '@" + std::string(text) + "'");
      return std::nullopt;
    }
    sel.pid = static_cast<std::int32_t>(*pv);
  }
  return sel;
}

}  // namespace

std::string ProcSelector::to_string() const {
  if (!machine && !pid) return "*";
  std::string out = machine ? std::to_string(*machine) : "*";
  out += ':';
  out += pid ? std::to_string(*pid) : "*";
  return out;
}

FieldId state_field_id(std::string_view name) {
  for (std::size_t i = 0; i < kFields.size(); ++i) {
    if (kFields[i].name == name) return static_cast<FieldId>(i);
  }
  return kNoField;
}

std::size_t state_field_count() { return kFields.size(); }

filter::FieldValue state_field_value(const Event& e, FieldId id) {
  switch (id) {
    case 0: return std::string(meter::event_name(e.type));
    case 1: return static_cast<std::int64_t>(e.machine);
    case 2: return e.cpu_time;
    case 3: return e.proc_time;
    case 4: return static_cast<std::int64_t>(e.pid);
    case 5: return static_cast<std::int64_t>(e.pc);
    case 6: return static_cast<std::int64_t>(e.sock);
    case 7: return static_cast<std::int64_t>(e.new_sock);
    case 8: return static_cast<std::int64_t>(e.msg_length);
    case 9: return static_cast<std::int64_t>(e.new_pid);
    case 10: return static_cast<std::int64_t>(e.status);
    case 11: return e.dest_name;
    case 12: return e.source_name;
    case 13: return e.sock_name;
    case 14: return e.peer_name;
    default: return std::int64_t{0};
  }
}

std::optional<PredicateSpec> PredicateSpec::parse(std::string_view text,
                                                  std::string* error) {
  PredicateSpec spec;
  text = util::trim(text);
  const std::size_t colon = text.find(':');
  // The name ends at the first ':' that is not inside a selector — a
  // selector always follows an '@', so the spec's own name:body colon is
  // simply the first one before any '@'.
  const std::size_t at = text.find('@');
  if (colon == std::string_view::npos || (at != std::string_view::npos &&
                                          colon > at)) {
    set_error(error, "spec lacks a '<name>:' prefix");
    return std::nullopt;
  }
  spec.name = std::string(util::trim(text.substr(0, colon)));
  if (spec.name.empty() || !util::is_word(spec.name)) {
    set_error(error, "bad predicate name '" + spec.name + "'");
    return std::nullopt;
  }

  const std::string body{text.substr(colon + 1)};
  for (const auto& conj_text : util::split(body, "&")) {
    const std::string_view conj = util::trim(conj_text);
    if (conj.empty()) {
      set_error(error, "empty conjunct (stray '&')");
      return std::nullopt;
    }
    if (conj.substr(0, 6) == "reach ") {
      const std::string_view rest = util::trim(conj.substr(6));
      const std::size_t arrow = rest.find("->");
      if (arrow == std::string_view::npos || rest.empty() ||
          rest.front() != '@') {
        set_error(error, "reach conjunct is not 'reach @<sel> -> @<sel>'");
        return std::nullopt;
      }
      const std::string_view to_text = util::trim(rest.substr(arrow + 2));
      if (to_text.empty() || to_text.front() != '@') {
        set_error(error, "reach target lacks '@'");
        return std::nullopt;
      }
      const auto from =
          parse_selector(util::trim(rest.substr(1, arrow - 1)), error);
      if (!from) return std::nullopt;
      const auto to = parse_selector(to_text.substr(1), error);
      if (!to) return std::nullopt;
      spec.reaches.push_back(ReachConjunct{*from, *to});
      continue;
    }
    if (conj.front() != '@') {
      set_error(error, "conjunct '" + std::string(conj) +
                           "' does not start with '@' or 'reach'");
      return std::nullopt;
    }
    const std::size_t sel_end = conj.find_first_of(" \t");
    if (sel_end == std::string_view::npos) {
      set_error(error, "conjunct '" + std::string(conj) + "' has no clauses");
      return std::nullopt;
    }
    const auto sel = parse_selector(conj.substr(1, sel_end - 1), error);
    if (!sel) return std::nullopt;
    LocalConjunct lc;
    lc.sel = *sel;
    for (const auto& clause_text : util::split(conj.substr(sel_end), ",")) {
      const std::string_view ct = util::trim(clause_text);
      if (ct.empty()) {
        set_error(error, "empty clause (stray ',')");
        return std::nullopt;
      }
      auto c = parse_clause(ct, error);
      if (!c) return std::nullopt;
      lc.clauses.push_back(std::move(*c));
    }
    spec.locals.push_back(std::move(lc));
  }
  if (spec.locals.empty()) {
    set_error(error, "predicate has no per-process conjunct");
    return std::nullopt;
  }
  return spec;
}

std::string PredicateSpec::to_string() const {
  std::string out = name + ":";
  bool first = true;
  for (const auto& lc : locals) {
    out += first ? " " : " & ";
    first = false;
    out += "@" + lc.sel.to_string();
    for (std::size_t i = 0; i < lc.clauses.size(); ++i) {
      const StateClause& c = lc.clauses[i];
      out += i == 0 ? " " : ", ";
      out += c.field;
      out += cmp_op_text(c.op);
      out += c.wildcard ? "*" : c.value;
    }
  }
  for (const auto& rc : reaches) {
    out += first ? " " : " & ";
    first = false;
    out += "reach @" + rc.from.to_string() + " -> @" + rc.to.to_string();
  }
  return out;
}

bool CompiledClause::holds(const filter::FieldValue& v) const {
  if (wildcard) return true;  // presence: the state slot is set at all
  // Template comparison semantics (templates.h): numeric when both sides
  // have a numeric view, textual otherwise.
  int cmp;
  const auto lhs_num = filter::field_value_num(v);
  if (lhs_num && value_num) {
    cmp = *lhs_num < *value_num ? -1 : (*lhs_num > *value_num ? 1 : 0);
  } else {
    const std::string lhs = filter::field_value_text(v);
    cmp = lhs < value ? -1 : (lhs > value ? 1 : 0);
  }
  switch (op) {
    case filter::CmpOp::eq: return cmp == 0;
    case filter::CmpOp::ne: return cmp != 0;
    case filter::CmpOp::lt: return cmp < 0;
    case filter::CmpOp::gt: return cmp > 0;
    case filter::CmpOp::le: return cmp <= 0;
    case filter::CmpOp::ge: return cmp >= 0;
  }
  return false;
}

std::optional<CompiledPredicate> CompiledPredicate::compile(
    const PredicateSpec& spec, const filter::Descriptions& desc,
    std::string* error) {
  CompiledPredicate out;
  out.spec_ = spec;
  for (const auto& lc : spec.locals) {
    CompiledConjunct cc;
    cc.sel = lc.sel;
    for (const auto& c : lc.clauses) {
      CompiledClause comp;
      comp.field = state_field_id(c.field);
      comp.op = c.op;
      comp.wildcard = c.wildcard;
      comp.value = c.value;
      if (comp.field == kNoField) {
        set_error(error, "unknown field '" + c.field + "'");
        return std::nullopt;
      }
      // The field must exist somewhere in the descriptions (header fields
      // and `type` always do; body fields must be described for at least
      // one event type) — the same unknown-field discipline the template
      // compiler applies per type, hoisted to compile time.
      if (c.field != "type") {
        bool described = false;
        for (const std::uint32_t t : desc.types()) {
          const auto layout = desc.record_layout(t);
          if (std::find(layout.begin(), layout.end(), c.field) !=
              layout.end()) {
            described = true;
            break;
          }
        }
        if (!described) {
          set_error(error, "field '" + c.field +
                               "' is not described for any event type");
          return std::nullopt;
        }
      }
      if (!comp.wildcard) {
        if (c.field == "type") {
          // Accept a type number or name; canonicalize to the name the
          // state tracks (state_field_value renders event names).
          if (const auto num = util::parse_int(comp.value)) {
            const auto et = static_cast<meter::EventType>(*num);
            const std::string_view nm = meter::event_name(et);
            if (nm.empty() || nm == "unknown") {
              set_error(error, "unknown event type number " + comp.value);
              return std::nullopt;
            }
            comp.value = std::string(nm);
          } else if (!meter::event_by_name(comp.value)) {
            set_error(error, "unknown event type name '" + comp.value + "'");
            return std::nullopt;
          }
        }
        comp.value_num = filter::field_value_num(comp.value);
      }
      cc.field_mask |= 1u << comp.field;
      cc.clauses.push_back(std::move(comp));
    }
    out.locals_.push_back(std::move(cc));
  }
  return out;
}

StateUpdateTable::StateUpdateTable(const filter::Descriptions& desc) {
  // Header fields + `type` change on every event regardless of type.
  const std::uint32_t header = (1u << state_field_id("type")) |
                               (1u << state_field_id("machine")) |
                               (1u << state_field_id("cpuTime")) |
                               (1u << state_field_id("procTime")) |
                               (1u << state_field_id("pid"));
  default_mask_ = header;
  for (std::size_t i = 0; i < kTypes; ++i) masks_[i] = header;
  for (const std::uint32_t t : desc.types()) {
    if (t >= kTypes) continue;
    std::uint32_t m = header;
    for (const std::string& f : desc.record_layout(t)) {
      const FieldId id = state_field_id(f);
      if (id != kNoField) m |= 1u << id;
    }
    masks_[t] = m;
  }
}

std::uint32_t StateUpdateTable::update_mask(meter::EventType t) const {
  const auto i = static_cast<std::size_t>(t);
  return i < kTypes ? masks_[i] : default_mask_;
}

}  // namespace dpm::analysis::pred
