file(REMOVE_RECURSE
  "libdpm_analysis.a"
)
