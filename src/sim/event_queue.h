// Discrete-event queue: the single source of time in the simulation.
//
// Events at equal times fire in insertion order (a monotone sequence number
// breaks ties), which keeps runs deterministic.
#pragma once

#include <cstdint>
#include <functional>
#include <queue>
#include <unordered_set>
#include <vector>

#include "util/time.h"

namespace dpm::sim {

/// Handle for cancelling a scheduled event (the event's sequence number).
using EventId = std::uint64_t;

class EventQueue {
 public:
  using Fn = std::function<void()>;

  /// Schedules `fn` at absolute simulated time `at`.
  EventId schedule(util::TimePoint at, Fn fn);

  /// Cancels a pending event: it will neither run nor advance simulated
  /// time. A queue holding only cancelled events is empty — crucial for
  /// quiescence: a satisfied select must not drag the world out to its
  /// timeout. Cancelling an event that already fired is a (cheap) bug:
  /// the tombstone can never be collected; callers guard with now <
  /// deadline.
  void cancel(EventId id);

  bool empty() const {
    drop_cancelled();
    return heap_.empty();
  }
  std::size_t size() const {
    drop_cancelled();
    return heap_.size();
  }

  /// Time of the earliest pending event; queue must not be empty.
  util::TimePoint next_time() const;

  /// Removes and returns the earliest event's action.
  Fn pop();

 private:
  struct Event {
    util::TimePoint at;
    std::uint64_t seq;
    Fn fn;
  };
  struct Later {
    bool operator()(const Event& a, const Event& b) const {
      if (a.at != b.at) return a.at > b.at;
      return a.seq > b.seq;
    }
  };
  /// Pops cancelled events off the top (lazy deletion; each erases its
  /// tombstone). Mutable + const so empty()/next_time() see through them.
  void drop_cancelled() const;

  mutable std::priority_queue<Event, std::vector<Event>, Later> heap_;
  mutable std::unordered_set<EventId> cancelled_;
  std::uint64_t next_seq_ = 0;
};

}  // namespace dpm::sim
