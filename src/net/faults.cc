#include "net/faults.h"

#include <charconv>
#include <cstdio>
#include <utility>

#include "util/rng.h"

namespace dpm::net {
namespace {

std::vector<std::string_view> split_ws(std::string_view s) {
  std::vector<std::string_view> out;
  std::size_t i = 0;
  while (i < s.size()) {
    while (i < s.size() && (s[i] == ' ' || s[i] == '\t')) ++i;
    std::size_t j = i;
    while (j < s.size() && s[j] != ' ' && s[j] != '\t') ++j;
    if (j > i) out.push_back(s.substr(i, j - i));
    i = j;
  }
  return out;
}

bool parse_i64(std::string_view s, std::int64_t* out) {
  auto [p, ec] = std::from_chars(s.data(), s.data() + s.size(), *out);
  return ec == std::errc{} && p == s.data() + s.size();
}

/// <int>us|ms|s, e.g. "250ms".
bool parse_dur(std::string_view s, util::Duration* out) {
  std::size_t n = s.size();
  std::int64_t scale = 0;
  if (n > 2 && s.substr(n - 2) == "us") scale = 1, n -= 2;
  else if (n > 2 && s.substr(n - 2) == "ms") scale = 1000, n -= 2;
  else if (n > 1 && s.back() == 's') scale = 1000000, n -= 1;
  std::int64_t v = 0;
  if (scale == 0 || !parse_i64(s.substr(0, n), &v) || v < 0) return false;
  *out = util::usec(v * scale);
  return true;
}

std::string format_dur(util::Duration d) {
  const std::int64_t us = util::count_us(d);
  if (us != 0 && us % 1000000 == 0) return std::to_string(us / 1000000) + "s";
  if (us != 0 && us % 1000 == 0) return std::to_string(us / 1000) + "ms";
  return std::to_string(us) + "us";
}

bool parse_double(std::string_view s, double* out) {
  auto [p, ec] = std::from_chars(s.data(), s.data() + s.size(), *out);
  return ec == std::errc{} && p == s.data() + s.size();
}

std::string format_loss(double p) {
  char buf[32];
  std::snprintf(buf, sizeof buf, "%g", p);
  return buf;
}

/// Splits "key=value"; returns false if there is no '='.
bool key_value(std::string_view tok, std::string_view* key,
               std::string_view* value) {
  auto eq = tok.find('=');
  if (eq == std::string_view::npos) return false;
  *key = tok.substr(0, eq);
  *value = tok.substr(eq + 1);
  return true;
}

bool fail(std::string* error, std::string msg) {
  if (error) *error = std::move(msg);
  return false;
}

/// Parses one event statement ("kind@time args...") into *ev.
bool parse_event(std::string_view stmt, FaultEvent* ev, std::string* error) {
  auto toks = split_ws(stmt);
  if (toks.empty()) return fail(error, "empty fault event");
  auto at = toks[0].find('@');
  if (at == std::string_view::npos) {
    return fail(error, "fault event needs kind@time: '" + std::string(toks[0]) + "'");
  }
  const std::string_view kind = toks[0].substr(0, at);
  util::Duration t{};
  if (!parse_dur(toks[0].substr(at + 1), &t)) {
    return fail(error, "bad fault time in '" + std::string(toks[0]) + "'");
  }
  ev->at = util::TimePoint{} + t;

  std::vector<std::string_view> words;  // bare positional arguments
  for (std::size_t i = 1; i < toks.size(); ++i) {
    std::string_view k, v;
    if (!key_value(toks[i], &k, &v)) {
      words.push_back(toks[i]);
      continue;
    }
    std::int64_t n = 0;
    if (k == "net" && parse_i64(v, &n)) {
      ev->net = static_cast<NetworkId>(n);
    } else if (k == "for" && parse_dur(v, &ev->duration)) {
    } else if (k == "p" && parse_double(v, &ev->loss)) {
    } else if (k == "add" && parse_dur(v, &ev->extra_latency)) {
    } else {
      return fail(error, "bad fault option '" + std::string(toks[i]) + "'");
    }
  }

  auto need_words = [&](std::size_t n) {
    return words.size() == n ||
           fail(error, std::string(kind) + " takes " + std::to_string(n) +
                           " machine name(s): '" + std::string(stmt) + "'");
  };
  if (kind == "drop") {
    ev->kind = FaultKind::drop_burst;
    if (!need_words(0)) return false;
    if (ev->duration.count() <= 0) return fail(error, "drop needs for=<dur>");
    if (ev->loss < 0 || ev->loss > 1) return fail(error, "drop needs p in [0,1]");
  } else if (kind == "spike") {
    ev->kind = FaultKind::latency_spike;
    if (!need_words(0)) return false;
    if (ev->duration.count() <= 0) return fail(error, "spike needs for=<dur>");
    if (ev->extra_latency.count() <= 0) return fail(error, "spike needs add=<dur>");
  } else if (kind == "partition") {
    ev->kind = FaultKind::partition;
    if (!need_words(2)) return false;
    ev->a = words[0], ev->b = words[1];
    if (ev->duration.count() <= 0) return fail(error, "partition needs for=<dur>");
  } else if (kind == "reset") {
    ev->kind = FaultKind::stream_reset;
    if (!need_words(2)) return false;
    ev->a = words[0], ev->b = words[1];
  } else if (kind == "crash" || kind == "restart") {
    ev->kind = kind == "crash" ? FaultKind::crash : FaultKind::restart;
    if (!need_words(1)) return false;
    ev->a = words[0];
  } else if (kind == "kill") {
    ev->kind = FaultKind::kill;
    if (words.size() != 2) return fail(error, "kill takes <machine> <pid>");
    ev->a = words[0];
    std::int64_t pid = 0;
    if (!parse_i64(words[1], &pid)) return fail(error, "kill needs a numeric pid");
    ev->pid = static_cast<std::int32_t>(pid);
  } else {
    return fail(error, "unknown fault kind '" + std::string(kind) + "'");
  }
  return true;
}

}  // namespace

const char* fault_kind_name(FaultKind k) {
  switch (k) {
    case FaultKind::drop_burst: return "drop";
    case FaultKind::latency_spike: return "spike";
    case FaultKind::partition: return "partition";
    case FaultKind::stream_reset: return "reset";
    case FaultKind::crash: return "crash";
    case FaultKind::restart: return "restart";
    case FaultKind::kill: return "kill";
  }
  return "?";
}

std::optional<FaultPlan> FaultPlan::parse(std::string_view dsl,
                                          std::string* error) {
  FaultPlan plan;
  std::size_t start = 0;
  for (std::size_t i = 0; i <= dsl.size(); ++i) {
    if (i < dsl.size() && dsl[i] != ';' && dsl[i] != '\n') continue;
    std::string_view stmt = dsl.substr(start, i - start);
    start = i + 1;
    if (auto hash = stmt.find('#'); hash != std::string_view::npos) {
      stmt = stmt.substr(0, hash);
    }
    if (split_ws(stmt).empty()) continue;  // blank / comment-only statement
    FaultEvent ev;
    if (!parse_event(stmt, &ev, error)) return std::nullopt;
    plan.events.push_back(std::move(ev));
  }
  return plan;
}

std::string FaultPlan::to_string() const {
  std::string out;
  for (const auto& ev : events) {
    if (!out.empty()) out += "; ";
    out += fault_kind_name(ev.kind);
    out += '@';
    out += format_dur(ev.at - util::TimePoint{});
    switch (ev.kind) {
      case FaultKind::drop_burst:
        out += " net=" + std::to_string(ev.net) + " for=" + format_dur(ev.duration) +
               " p=" + format_loss(ev.loss);
        break;
      case FaultKind::latency_spike:
        out += " net=" + std::to_string(ev.net) + " for=" + format_dur(ev.duration) +
               " add=" + format_dur(ev.extra_latency);
        break;
      case FaultKind::partition:
        out += " " + ev.a + " " + ev.b + " for=" + format_dur(ev.duration);
        break;
      case FaultKind::stream_reset:
        out += " " + ev.a + " " + ev.b;
        break;
      case FaultKind::crash:
      case FaultKind::restart:
        out += " " + ev.a;
        break;
      case FaultKind::kill:
        out += " " + ev.a + " " + std::to_string(ev.pid);
        break;
    }
  }
  return out;
}

FaultPlan FaultPlan::random(std::uint64_t seed,
                            const std::vector<std::string>& machines,
                            util::Duration horizon) {
  FaultPlan plan;
  util::Rng rng(seed ^ 0x6661756c74ULL);  // "fault"
  if (machines.empty() || horizon.count() <= 0) return plan;
  const std::int64_t h = util::count_us(horizon);
  auto pick_at = [&] { return util::TimePoint{} + util::usec(rng.uniform(h / 10, h - 1)); };
  auto pick_machine = [&](std::size_t min_index) {
    return machines[static_cast<std::size_t>(rng.uniform(
        static_cast<std::int64_t>(min_index),
        static_cast<std::int64_t>(machines.size()) - 1))];
  };
  const std::int64_t n = rng.uniform(3, 8);
  for (std::int64_t i = 0; i < n; ++i) {
    FaultEvent ev;
    ev.at = pick_at();
    switch (rng.uniform(0, 4)) {
      case 0:
        ev.kind = FaultKind::drop_burst;
        ev.duration = util::usec(rng.uniform(h / 50, h / 5));
        ev.loss = 0.25 + 0.75 * rng.uniform01();
        break;
      case 1:
        ev.kind = FaultKind::latency_spike;
        ev.duration = util::usec(rng.uniform(h / 50, h / 5));
        ev.extra_latency = util::usec(rng.uniform(500, h / 20 + 500));
        break;
      case 2: {
        ev.kind = FaultKind::partition;
        ev.a = pick_machine(0);
        do { ev.b = pick_machine(0); } while (machines.size() > 1 && ev.b == ev.a);
        ev.duration = util::usec(rng.uniform(h / 50, h / 4));
        break;
      }
      case 3: {
        ev.kind = FaultKind::stream_reset;
        ev.a = pick_machine(0);
        do { ev.b = pick_machine(0); } while (machines.size() > 1 && ev.b == ev.a);
        break;
      }
      default: {
        if (machines.size() < 2) { --i; continue; }  // never crash the hub
        ev.kind = FaultKind::crash;
        ev.a = pick_machine(1);
        FaultEvent up;
        up.kind = FaultKind::restart;
        up.a = ev.a;
        up.at = ev.at + util::usec(rng.uniform(h / 20, h / 4));
        plan.events.push_back(std::move(up));
        break;
      }
    }
    plan.events.push_back(std::move(ev));
  }
  return plan;
}

FaultInjector::FaultInjector(sim::Executive& exec, Fabric& fabric,
                             FaultPlan plan, FaultHooks hooks,
                             obs::Registry* reg)
    : exec_(exec), fabric_(fabric), plan_(std::move(plan)),
      hooks_(std::move(hooks)) {
  if (!reg) {
    own_reg_ = std::make_unique<obs::Registry>();
    reg = own_reg_.get();
  }
  reg_ = reg;
  c_injections_ = &reg_->counter("faults.injections");
  static constexpr const char* kKindKeys[kFaultKinds] = {
      "faults.drop_bursts",   "faults.latency_spikes", "faults.partitions",
      "faults.stream_resets", "faults.crashes",        "faults.restarts",
      "faults.kills"};
  for (int i = 0; i < kFaultKinds; ++i) c_kind_[i] = &reg_->counter(kKindKeys[i]);
  g_active_partitions_ = &reg_->gauge("faults.active_partitions");
}

void FaultInjector::arm() {
  if (armed_) return;
  armed_ = true;
  for (std::size_t i = 0; i < plan_.events.size(); ++i) {
    exec_.schedule_at(plan_.events[i].at, [this, i] { fire(plan_.events[i]); });
  }
}

std::optional<MachineId> FaultInjector::resolve(const std::string& name) const {
  if (hooks_.machine_id) return hooks_.machine_id(name);
  std::int64_t id = 0;
  if (!parse_i64(name, &id)) return std::nullopt;
  return static_cast<MachineId>(id);
}

void FaultInjector::fire(const FaultEvent& ev) {
  ++injected_;
  c_injections_->add(1);
  c_kind_[static_cast<int>(ev.kind)]->add(1);
  const util::TimePoint now = exec_.now();
  switch (ev.kind) {
    case FaultKind::drop_burst:
      fabric_.fault_drop_burst(ev.net, ev.loss, now + ev.duration);
      break;
    case FaultKind::latency_spike:
      fabric_.fault_latency_spike(ev.net, ev.extra_latency, now + ev.duration);
      break;
    case FaultKind::partition: {
      auto a = resolve(ev.a), b = resolve(ev.b);
      if (!a || !b || *a == *b) break;
      fabric_.fault_partition(*a, *b, now + ev.duration);
      g_active_partitions_->add(1);
      exec_.schedule_at(now + ev.duration,
                        [this] { g_active_partitions_->sub(1); });
      break;
    }
    case FaultKind::stream_reset:
      if (hooks_.reset_streams) hooks_.reset_streams(ev.a, ev.b);
      break;
    case FaultKind::crash:
      if (hooks_.crash_machine) hooks_.crash_machine(ev.a);
      break;
    case FaultKind::restart:
      if (hooks_.restart_machine) hooks_.restart_machine(ev.a);
      break;
    case FaultKind::kill:
      if (hooks_.kill_process) hooks_.kill_process(ev.a, ev.pid);
      break;
  }
}

}  // namespace dpm::net
