// Acquiring a running system server (§4.3): "a user may be interested
// only in monitoring a system server to better understand its behavior."
//
// An echo server is already running on red (it was NOT created by the
// monitor). The session acquires it, watches its traffic while ordinary
// unmonitored clients use it, then removes the job — which takes the
// metering down but leaves the server running.
#include <iostream>

#include "analysis/report.h"
#include "apps/apps.h"
#include "control/session.h"
#include "kernel/world.h"
#include "util/strings.h"

int main() {
  using namespace dpm;

  kernel::World world;
  const kernel::MachineId yellow = world.add_machine("yellow");
  const kernel::MachineId red = world.add_machine("red");
  const kernel::MachineId green = world.add_machine("green");

  control::install_monitor(world);
  apps::install_everywhere(world);
  control::spawn_meterdaemons(world);
  world.add_account_everywhere(100);

  // The pre-existing server (pid printed below, as `ps` would show it).
  auto server = world.spawn(red, "echo_server", 100,
                            apps::make_echo_server({"echo_server", "7", "0"}));
  if (!server.ok()) return 1;
  std::cout << "system server already running on red, pid " << *server
            << "\n\n";

  control::MonitorSession session(world, {.host = "yellow", .uid = 100});
  world.run();
  (void)session.drain_output();

  auto run = [&](const std::string& cmd) {
    std::cout << cmd << "\n" << session.command(cmd);
  };
  run("filter f1 yellow");
  run("newjob watch");
  run("setflags watch send receive receivecall");
  run(util::strprintf("acquire watch red %d", *server));
  run("jobs watch");

  // Ordinary clients (unmonitored) use the server while it is watched.
  for (int i = 0; i < 3; ++i) {
    (void)world.spawn(green, "client", 100,
                      apps::make_echo_client(
                          {"echo_client", "red", "7", "5", "64"}));
  }
  world.run();
  std::cout << session.drain_output();

  run("removejob watch");
  run("getlog f1 server.trace");
  session.send_line("bye");
  world.run();

  kernel::Process* p = world.find_process(red, *server);
  std::cout << "\nserver still "
            << (p && p->status == kernel::ProcStatus::alive ? "running"
                                                            : "GONE")
            << " after the monitoring session; meter flags now "
            << (p ? p->meter_flags : 0) << "\n\n";

  auto text = world.machine(yellow).fs.read_text("server.trace");
  if (text) {
    const analysis::Trace trace = analysis::read_trace(*text);
    std::cout << analysis::full_report(trace);
  }
  return 0;
}
