# Empty dependencies file for tsp_measurement.
# This may be replaced when dependencies are built.
