// Scale: many machines, many metered processes, one filter — the monitor
// keeps up and the trace stays complete and well-formed.
#include <gtest/gtest.h>

#include "analysis/comm_stats.h"
#include "analysis/ordering.h"
#include "apps/apps.h"
#include "control/session.h"
#include "testing.h"
#include "util/strings.h"

namespace dpm {
namespace {

TEST(ScaleTest, ManyPairsThroughOneFilter) {
  constexpr int kPairs = 12;  // 24 metered processes on 8 machines
  kernel::World world(dpm::testing::quick_config(81));
  std::vector<std::string> names{"hub"};
  for (int i = 0; i < 8; ++i) names.push_back("node" + std::to_string(i));
  auto machines = dpm::testing::add_machines(world, names);
  control::install_monitor(world);
  apps::install_everywhere(world);
  control::spawn_meterdaemons(world);
  control::MonitorSession session(
      world, control::MonitorSession::Options{.host = "hub", .uid = 100});
  world.run();
  (void)session.drain_output();

  (void)session.command("filter f1 hub");
  (void)session.command("newjob big");
  for (int i = 0; i < kPairs; ++i) {
    const std::string srv = names[1 + static_cast<std::size_t>(i % 8)];
    const std::string cli = names[1 + static_cast<std::size_t>((i + 3) % 8)];
    const int port = 5200 + i;
    (void)session.command(util::strprintf(
        "addprocess big %s pingpong_server %d 4", srv.c_str(), port));
    (void)session.command(util::strprintf(
        "addprocess big %s pingpong_client %s %d 4 32", cli.c_str(),
        srv.c_str(), port));
  }
  (void)session.command("setflags big send receive accept connect");
  std::string out = session.command("startjob big");
  world.run();
  out += session.drain_output();

  // Every process terminated normally.
  EXPECT_EQ(static_cast<int>(
                [&] {
                  int n = 0;
                  std::size_t pos = 0;
                  while ((pos = out.find("reason: normal", pos)) !=
                         std::string::npos) {
                    ++n;
                    pos += 10;
                  }
                  return n;
                }()),
            2 * kPairs)
      << out;

  (void)session.command("removejob big");
  (void)session.command("getlog f1 t");
  auto text = world.machine(machines[0]).fs.read_text("t");
  ASSERT_TRUE(text.has_value());
  analysis::Trace trace = analysis::read_trace(*text);
  EXPECT_EQ(trace.malformed, 0u);

  analysis::CommStats stats = analysis::communication_statistics(trace);
  EXPECT_EQ(stats.per_process.size(), 2u * kPairs);
  // Every pair contributes a bidirectional edge of 4 x 32-byte messages.
  ASSERT_EQ(stats.graph.edges.size(), 2u * kPairs);
  for (const auto& e : stats.graph.edges) {
    EXPECT_EQ(e.messages, 4u);
    EXPECT_EQ(e.bytes, 128u);
  }

  analysis::Ordering ordering = analysis::order_events(trace);
  EXPECT_EQ(ordering.message_pairs, 8u * kPairs);
  EXPECT_FALSE(ordering.had_cycle);
}

}  // namespace
}  // namespace dpm
