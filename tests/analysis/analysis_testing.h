// Helpers to build synthetic traces for the analysis tests: serialize
// meter messages, decode them with the standard descriptions, render
// trace lines — the same path a real filter takes.
#pragma once

#include <string>
#include <vector>

#include "analysis/trace_reader.h"
#include "filter/descriptions.h"
#include "filter/trace.h"
#include "meter/metermsgs.h"

namespace dpm::analysis_testing {

struct Stamp {
  std::uint16_t machine = 0;
  std::int64_t cpu_time = 0;
  std::int64_t proc_time = 0;
};

inline std::string trace_text(
    const std::vector<std::pair<Stamp, meter::MeterBody>>& events) {
  static const filter::Descriptions desc =
      *filter::Descriptions::parse(filter::default_descriptions_text());
  std::string out;
  for (const auto& [stamp, body] : events) {
    meter::MeterMsg m;
    m.body = body;
    m.header.machine = stamp.machine;
    m.header.cpu_time = stamp.cpu_time;
    m.header.proc_time = stamp.proc_time;
    auto rec = desc.decode(m.serialize());
    EXPECT_TRUE(rec.has_value());
    out += filter::trace_line(*rec, {});
  }
  return out;
}

inline analysis::Trace make_trace(
    const std::vector<std::pair<Stamp, meter::MeterBody>>& events) {
  return analysis::read_trace(trace_text(events));
}

}  // namespace dpm::analysis_testing
