#include "obs/registry.h"

#include <cmath>

#include "obs/snapshot.h"
#include "util/strings.h"

namespace dpm::obs {

std::int64_t Histogram::percentile(double p) const {
  if (count_ == 0) return 0;
  if (p < 0) p = 0;
  if (p > 100) p = 100;
  const double target = p / 100.0 * static_cast<double>(count_);
  std::uint64_t cum = 0;
  for (int i = 0; i < kBuckets; ++i) {
    cum += buckets_[i];
    if (static_cast<double>(cum) >= target && cum > 0) {
      const std::int64_t bound = bucket_bound(i);
      return bound < max_ ? bound : max_;
    }
  }
  return max_;
}

Counter& Registry::counter(std::string_view key) {
  auto it = counters_.find(key);
  if (it == counters_.end()) {
    it = counters_.emplace(std::string(key), Counter{}).first;
  }
  return it->second;
}

Gauge& Registry::gauge(std::string_view key) {
  auto it = gauges_.find(key);
  if (it == gauges_.end()) {
    it = gauges_.emplace(std::string(key), Gauge{}).first;
  }
  return it->second;
}

Histogram& Registry::histogram(std::string_view key) {
  auto it = histograms_.find(key);
  if (it == histograms_.end()) {
    it = histograms_.emplace(std::string(key), Histogram{}).first;
  }
  return it->second;
}

void Registry::push_span_event(SpanEvent ev) {
  if (span_ring_.size() >= span_capacity_) {
    span_ring_.pop_front();
    ++spans_dropped_;
  }
  span_ring_.push_back(std::move(ev));
}

std::uint64_t Registry::span_begin(std::string name) {
  const std::uint64_t id = next_span_++;
  SpanEvent ev;
  ev.span = id;
  ev.parent = current_span();
  ev.name = name;
  ev.begin = true;
  ev.t_us = util::count_us(now());
  push_span_event(ev);
  open_spans_.push_back(OpenSpan{id, std::move(name)});
  return id;
}

void Registry::span_end(std::uint64_t id) {
  SpanEvent ev;
  ev.span = id;
  ev.begin = false;
  ev.t_us = util::count_us(now());
  // Spans are RAII so ends arrive innermost-first; tolerate a stray id by
  // searching from the back (it can only happen if a span outlives a
  // sibling, which ObsSpan's scoping forbids).
  for (auto it = open_spans_.rbegin(); it != open_spans_.rend(); ++it) {
    if (it->span == id) {
      ev.name = it->name;  // parent linkage is carried by the begin event
      open_spans_.erase(std::next(it).base());
      break;
    }
  }
  push_span_event(std::move(ev));
}

void Registry::snapshot_jsonl(std::string& out) const {
  write_snapshot_jsonl(*this, ++snapshot_seq_, out);
}

std::string Registry::snapshot_jsonl() const {
  std::string out;
  snapshot_jsonl(out);
  return out;
}

}  // namespace dpm::obs
