#include "sim/clock.h"

namespace dpm::sim {

std::int64_t MachineClock::skewed_us(std::int64_t true_us) const {
  const double skewed =
      static_cast<double>(true_us) * (1.0 + cfg_.drift_ppm * 1e-6) +
      static_cast<double>(cfg_.offset.count());
  const std::int64_t tick = cfg_.tick.count() > 0 ? cfg_.tick.count() : 1;
  const auto raw = static_cast<std::int64_t>(skewed);
  return (raw / tick) * tick;
}

std::int64_t MachineClock::true_us_from_local(std::int64_t local_us) const {
  const double t = (static_cast<double>(local_us) -
                    static_cast<double>(cfg_.offset.count())) /
                   (1.0 + cfg_.drift_ppm * 1e-6);
  return static_cast<std::int64_t>(t >= 0 ? t + 0.5 : t - 0.5);
}

std::int64_t MachineClock::error_bound_us(std::int64_t horizon_us) const {
  const std::int64_t off = cfg_.offset.count();
  const double drift = cfg_.drift_ppm >= 0 ? cfg_.drift_ppm : -cfg_.drift_ppm;
  const std::int64_t tick = cfg_.tick.count() > 0 ? cfg_.tick.count() : 1;
  return (off >= 0 ? off : -off) +
         static_cast<std::int64_t>(drift * 1e-6 *
                                   static_cast<double>(horizon_us)) +
         tick;
}

}  // namespace dpm::sim
