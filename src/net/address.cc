#include "net/address.h"

#include "util/strings.h"

namespace dpm::net {

SockAddr SockAddr::inet(NetworkId network, HostAddr host, Port port) {
  SockAddr a;
  a.family = Family::internet;
  a.network = network;
  a.host = host;
  a.port = port;
  return a;
}

SockAddr SockAddr::unix_name(std::string path) {
  SockAddr a;
  a.family = Family::unix_path;
  a.path = std::move(path);
  return a;
}

SockAddr SockAddr::internal(std::uint64_t unique) {
  SockAddr a;
  a.family = Family::internal;
  a.path = util::strprintf("#%llu", static_cast<unsigned long long>(unique));
  return a;
}

std::string SockAddr::text() const {
  switch (family) {
    case Family::unspec:
      return "";
    case Family::internet:
      return util::strprintf(
          "%lld", static_cast<long long>(static_cast<std::int64_t>(host) * 65536 + port));
    case Family::unix_path:
    case Family::internal:
      return path;
  }
  return "";
}

std::optional<std::int64_t> SockAddr::numeric() const {
  if (family != Family::internet) return std::nullopt;
  return static_cast<std::int64_t>(host) * 65536 + port;
}

std::string SockAddr::debug() const {
  switch (family) {
    case Family::unspec:
      return "unspec";
    case Family::internet:
      return util::strprintf("inet(net%u,%u:%u)", network, host, port);
    case Family::unix_path:
      return "unix(" + path + ")";
    case Family::internal:
      return "pair(" + path + ")";
  }
  return "?";
}

}  // namespace dpm::net
