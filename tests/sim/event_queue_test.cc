#include "sim/event_queue.h"

#include <gtest/gtest.h>

#include <vector>

namespace dpm::sim {
namespace {

using util::TimePoint;
using util::usec;

TEST(EventQueue, OrdersByTime) {
  EventQueue q;
  std::vector<int> fired;
  q.schedule(TimePoint{} + usec(30), [&] { fired.push_back(3); });
  q.schedule(TimePoint{} + usec(10), [&] { fired.push_back(1); });
  q.schedule(TimePoint{} + usec(20), [&] { fired.push_back(2); });
  while (!q.empty()) q.pop()();
  EXPECT_EQ(fired, (std::vector<int>{1, 2, 3}));
}

TEST(EventQueue, TiesFireInInsertionOrder) {
  EventQueue q;
  std::vector<int> fired;
  const TimePoint t = TimePoint{} + usec(5);
  for (int i = 0; i < 10; ++i) {
    q.schedule(t, [&fired, i] { fired.push_back(i); });
  }
  while (!q.empty()) q.pop()();
  for (int i = 0; i < 10; ++i) EXPECT_EQ(fired[static_cast<std::size_t>(i)], i);
}

TEST(EventQueue, NextTimeReportsEarliest) {
  EventQueue q;
  q.schedule(TimePoint{} + usec(50), [] {});
  q.schedule(TimePoint{} + usec(20), [] {});
  EXPECT_EQ(q.next_time(), TimePoint{} + usec(20));
  q.pop();
  EXPECT_EQ(q.next_time(), TimePoint{} + usec(50));
}

TEST(EventQueue, SizeTracksContents) {
  EventQueue q;
  EXPECT_TRUE(q.empty());
  q.schedule(TimePoint{}, [] {});
  q.schedule(TimePoint{}, [] {});
  EXPECT_EQ(q.size(), 2u);
  q.pop();
  EXPECT_EQ(q.size(), 1u);
}

}  // namespace
}  // namespace dpm::sim
