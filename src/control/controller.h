// The controller (§3.5, §4.3) — "a command interpreter. It provides the
// user with a concise menu of commands to use in the measurement and
// control of one or more distributed computations."
//
// Commands: help, filter, newjob, addprocess, acquire, setflags, startjob,
// stopjob, removejob, removeprocess, jobs, getlog, source, sink, predicate,
// die (aliases exit, bye). The controller runs as a simulated process: it
// reads commands from standard input, performs daemon RPCs over temporary
// connections, and listens on a notification socket for daemon-initiated
// state-change reports (§3.5.1).
#pragma once

#include <deque>
#include <map>
#include <optional>
#include <string>
#include <utility>
#include <vector>

#include "control/job.h"
#include "daemon/protocol.h"
#include "kernel/exec_registry.h"
#include "kernel/syscalls.h"
#include "net/address.h"

namespace dpm::control {

/// A per-machine local filter in a fan-in tree: runs the session's
/// programs against that machine's meter streams in place and forwards
/// only accepted records up the tree.
struct LocalFilterRec {
  kernel::Pid pid = 0;
  net::Port meter_port = 0;
};

/// An intermediate fan-in node: concatenates its children's forwarded
/// batches and relays them toward the session filter.
struct AggregatorRec {
  std::string machine;
  kernel::Pid pid = 0;
  net::Port meter_port = 0;
};

/// A filter process the controller created, plus its fan-in tree (if one
/// was built with the `fanin` command).
struct FilterRec {
  std::string name;
  std::string machine;
  kernel::Pid pid = 0;
  net::Port meter_port = 0;
  std::string logfile;
  std::string descriptions;
  std::string templates;
  std::map<std::string, LocalFilterRec> locals;  // keyed by machine
  std::vector<AggregatorRec> aggregators;
};

/// Per-machine RPC health as the controller sees it. A machine is marked
/// down when an RPC to its daemon exhausts its deadline/retry budget; the
/// `reconcile` command probes down machines and clears the mark when the
/// daemon answers again.
struct MachineHealth {
  bool down = false;
  std::string reason;  // err_name of the failure that marked it down
};

class Controller {
 public:
  explicit Controller(kernel::Sys& sys);

  /// The command loop; returns when the user exits.
  void run();

  /// Executes one command line (used by run() and by tests driving the
  /// controller directly). Returns false when the command ends the
  /// session.
  bool execute(const std::string& line);

  // Introspection for tests.
  const std::map<std::string, FilterRec>& filters() const { return filters_; }
  const std::map<std::string, Job>& jobs() const { return jobs_; }
  net::Port control_port() const { return control_port_; }
  const std::map<std::string, MachineHealth>& machine_health() const {
    return machine_health_;
  }

 private:
  // ---- command handlers (§4.3) ----
  void cmd_help();
  /// `predicate add|list|verdicts|stats` — drives the online predicate
  /// detector when one is installed (analysis/predicates/service.h).
  /// Takes the raw command tail: specs contain non-word characters.
  void cmd_predicate(const std::string& rest);
  void cmd_filter(const std::vector<std::string>& args);
  void cmd_fanin(const std::vector<std::string>& args);
  void cmd_rpcmode(const std::vector<std::string>& args);
  void cmd_newjob(const std::vector<std::string>& args);
  void cmd_addprocess(const std::vector<std::string>& args);
  void cmd_addgroup(const std::vector<std::string>& args);
  void cmd_acquire(const std::vector<std::string>& args);
  void cmd_setflags(const std::vector<std::string>& args);
  void cmd_startjob(const std::vector<std::string>& args);
  void cmd_stopjob(const std::vector<std::string>& args);
  void cmd_removejob(const std::vector<std::string>& args);
  void cmd_removeprocess(const std::vector<std::string>& args);
  void cmd_jobs(const std::vector<std::string>& args);
  void cmd_reconcile(const std::vector<std::string>& args);
  void cmd_getlog(const std::vector<std::string>& args);
  void cmd_source(const std::vector<std::string>& args);
  void cmd_sink(const std::vector<std::string>& args);
  bool cmd_die();

  // ---- plumbing ----
  void emit(const std::string& text);  // honors sink redirection
  void prompt();
  std::optional<std::string> next_command_line();
  void poll_notifications(bool block_until_input);
  void handle_notification(kernel::Fd conn);
  /// Ensures `path` exists on `machine`, copying it with rcp from the
  /// controller's machine if needed (§3.5.3). Returns false on failure.
  bool stage_file(const std::string& machine, const std::string& path);
  std::optional<net::SockAddr> daemon_addr(const std::string& machine);
  /// Removes one process per removejob semantics; true on success.
  bool remove_proc(Job& job, ProcEntry& p);
  /// Kills every filter process (on die).
  void remove_filters();

  /// All daemon RPCs go through here: fail-fast while the machine is
  /// marked down, hardened deadline/retry call otherwise, mark-down on a
  /// terminal transport failure.
  util::SysResult<daemon::DaemonMsg> daemon_rpc(const std::string& machine,
                                                const net::SockAddr& addr,
                                                const daemon::DaemonMsg& req);

  /// One element of a multi-machine RPC round.
  struct MultiCall {
    std::string machine;
    net::SockAddr addr;
    daemon::DaemonMsg req;
    daemon::RpcOptions opts;
  };
  /// Issues a round of independent daemon RPCs: serially via daemon_rpc in
  /// `rpcmode serial`, or pipelined across shards (in-flight window) in
  /// `rpcmode batched`. Both paths share the down-machine fail-fast and
  /// mark-down bookkeeping. Replies are parallel to `calls`.
  std::vector<util::SysResult<daemon::DaemonMsg>> multi_rpc(
      std::vector<MultiCall>& calls);
  /// Marks `machine` down on a terminal transport failure (shared by
  /// daemon_rpc and the pipelined path).
  void note_rpc_failure(const std::string& machine, util::Err e);
  /// Applies one proc op (start/stop/kill/release) to `procs`, grouped per
  /// machine into BatchProcRequests and issued via multi_rpc. Returns
  /// per-process statuses parallel to `procs` (0 ok, else util::Err).
  std::vector<std::int32_t> batch_proc_op(const std::vector<ProcEntry*>& procs,
                                          daemon::MsgType what);
  /// Where a process on `machine` should send meter records: the
  /// machine's local filter when the tree has one, else the root filter.
  std::pair<std::string, net::Port> meter_target(const FilterRec& filt,
                                                 const std::string& machine);
  /// Fresh at-most-once request identity (pid in the high half keeps
  /// nonces distinct across controller instances).
  std::uint64_t next_nonce();

  kernel::Sys& sys_;
  net::Port control_port_ = 0;
  kernel::Fd notif_sock_ = -1;

  std::map<std::string, FilterRec> filters_;
  std::string default_filter_;
  std::map<std::string, Job> jobs_;
  std::map<std::string, MachineHealth> machine_health_;
  std::uint64_t nonce_seq_ = 0;

  // RPC dispatch mode (`rpcmode` command): serial per-process calls (the
  // paper's behavior, the default) or batched requests pipelined across
  // daemon shards with this many in flight.
  bool batched_ = false;
  int window_ = 8;

  // source/sink state (§4.3)
  std::vector<std::deque<std::string>> source_stack_;
  kernel::Fd sink_fd_ = -1;
  bool warned_die_ = false;
  bool prompt_pending_ = false;
};

/// The controller program ("controller" in the exec registry).
kernel::ProcessMain make_controller_main(const std::vector<std::string>& argv);
void register_controller_program(kernel::ExecRegistry& registry);

inline constexpr const char* kControllerProgram = "controller";
inline constexpr std::size_t kMaxSourceDepth = 16;  // §4.3 source nesting

}  // namespace dpm::control
