// The distributed grid relaxation: the decomposition must not change the
// numerics (boundary exchange is exact), and its trace shows the
// neighbour-chain structure.
#include <gtest/gtest.h>

#include "analysis/comm_stats.h"
#include "apps/apps.h"
#include "control/session.h"
#include "testing.h"
#include "util/strings.h"

namespace dpm {
namespace {

/// Runs grid_node on `n` machines; returns the global sum parsed from the
/// nodes' output lines.
double run_grid(int n, int iters, int rows, int cols, std::string* transcript,
                kernel::World** world_out = nullptr,
                analysis::Trace* trace_out = nullptr) {
  static std::unique_ptr<kernel::World> world;  // keep alive for world_out
  world = std::make_unique<kernel::World>(dpm::testing::quick_config(91));
  std::vector<std::string> names{"hub"};
  for (int i = 0; i < n; ++i) names.push_back("g" + std::to_string(i));
  auto machines = dpm::testing::add_machines(*world, names);
  control::install_monitor(*world);
  apps::install_everywhere(*world);
  control::spawn_meterdaemons(*world);
  control::MonitorSession session(
      *world, control::MonitorSession::Options{.host = "hub", .uid = 100});
  world->run();
  (void)session.drain_output();

  (void)session.command("filter f1 hub");
  (void)session.command("newjob grid");
  std::string hosts;
  for (int i = 0; i < n; ++i) hosts += " g" + std::to_string(i);
  for (int i = 0; i < n; ++i) {
    (void)session.command(util::strprintf(
        "addprocess grid g%d grid_node %d %d %d %d %d 8400%s", i, i, n, iters,
        rows, cols, hosts.c_str()));
  }
  (void)session.command("setflags grid all");
  std::string out = session.command("startjob grid");
  world->run();
  out += session.drain_output();
  if (transcript) *transcript = out;

  if (trace_out) {
    (void)session.command("removejob grid");
    (void)session.command("getlog f1 t");
    auto text = world->machine(machines[0]).fs.read_text("t");
    EXPECT_TRUE(text.has_value());
    *trace_out = analysis::read_trace(text.value_or(""));
  }
  if (world_out) *world_out = world.get();

  // Sum the per-node sums from "grid_node i: sum X" lines.
  double total = 0;
  std::size_t pos = 0;
  int found = 0;
  while ((pos = out.find(": sum ", pos)) != std::string::npos) {
    pos += 6;
    total += std::strtod(out.c_str() + pos, nullptr);
    ++found;
  }
  EXPECT_EQ(found, n) << out;
  return total;
}

TEST(GridTest, DecompositionDoesNotChangeTheNumerics) {
  std::string t1, t3, t4;
  const double serial = run_grid(1, 5, 12, 6, &t1);
  const double three = run_grid(3, 5, 12, 6, &t3);
  const double four = run_grid(4, 5, 12, 6, &t4);
  // Tolerance covers only the %.6f rounding of each node's printed sum;
  // the underlying arithmetic is exact across decompositions.
  EXPECT_NEAR(serial, three, 1e-5) << t3;
  EXPECT_NEAR(serial, four, 1e-5) << t4;
  EXPECT_GT(serial, 0.0);
}

TEST(GridTest, TraceShowsNeighbourChain) {
  std::string transcript;
  analysis::Trace trace;
  (void)run_grid(3, 4, 12, 6, &transcript, nullptr, &trace);
  EXPECT_EQ(trace.malformed, 0u);

  analysis::CommStats stats = analysis::communication_statistics(trace);
  EXPECT_EQ(stats.per_process.size(), 3u);
  // A 3-node chain: 0<->1 and 1<->2, both directions = 4 directed edges;
  // each carries one boundary row per iteration.
  ASSERT_EQ(stats.graph.edges.size(), 4u);
  for (const auto& e : stats.graph.edges) {
    EXPECT_EQ(e.messages, 4u);          // iterations
    EXPECT_EQ(e.bytes, 4u * 6u * 8u);   // iters * cols * sizeof(double)
  }
}

}  // namespace
}  // namespace dpm
