file(REMOVE_RECURSE
  "libdpm_filter.a"
)
