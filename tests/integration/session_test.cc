// The Appendix B session, end to end: controller commands drive filters,
// daemons, metered processes; the transcript has the paper's shape and
// the retrieved log holds the expected events.
#include <gtest/gtest.h>

#include "apps/apps.h"
#include "analysis/trace_reader.h"
#include "control/session.h"
#include "filter/trace.h"
#include "testing.h"

namespace dpm::control {
namespace {

class SessionTest : public ::testing::Test {
 protected:
  SessionTest() : world_(dpm::testing::quick_config()) {
    machines_ = dpm::testing::add_machines(
        world_, {"yellow", "red", "green", "blue"});
    install_monitor(world_);
    apps::install_everywhere(world_);
    spawn_meterdaemons(world_);
    session_ = std::make_unique<MonitorSession>(
        world_, MonitorSession::Options{.host = "yellow", .uid = 100});
    world_.run();  // daemons + controller boot
    (void)session_->drain_output();  // initial prompt
  }

  kernel::World world_;
  std::vector<kernel::MachineId> machines_;
  std::unique_ptr<MonitorSession> session_;
};

TEST_F(SessionTest, AppendixBSession) {
  // <Control> filter f1 blue
  std::string out = session_->command("filter f1 blue");
  EXPECT_NE(out.find("filter 'f1' ... created: identifier ="),
            std::string::npos)
      << out;

  // <Control> newjob foo
  out = session_->command("newjob foo");
  EXPECT_EQ(out.find("no filter"), std::string::npos) << out;

  // <Control> addprocess foo red A   (A = pingpong server on red)
  out = session_->command("addprocess foo red pingpong_server 4810 3");
  EXPECT_NE(out.find("process 'pingpong_server' ... created: identifier ="),
            std::string::npos)
      << out;

  // <Control> addprocess foo green B   (B = pingpong client on green)
  out = session_->command("addprocess foo green pingpong_client red 4810 3 64");
  EXPECT_NE(out.find("created: identifier ="), std::string::npos) << out;

  // <Control> setflags foo send receive fork accept connect
  out = session_->command("setflags foo send receive fork accept connect");
  EXPECT_NE(out.find("new job flags = send receive fork accept connect"),
            std::string::npos)
      << out;
  EXPECT_NE(out.find("Flags set"), std::string::npos) << out;

  // <Control> startjob foo
  out = session_->command("startjob foo");
  EXPECT_NE(out.find("'pingpong_server' started."), std::string::npos) << out;
  EXPECT_NE(out.find("'pingpong_client' started."), std::string::npos) << out;

  // DONE: process ... terminated: reason: normal   (both processes)
  EXPECT_NE(out.find("in job 'foo' terminated: reason: normal"),
            std::string::npos)
      << out;

  // <Control> rmjob foo
  out = session_->command("rmjob foo");
  EXPECT_NE(out.find("'pingpong_server' removed"), std::string::npos) << out;
  EXPECT_NE(out.find("'pingpong_client' removed"), std::string::npos) << out;

  // <Control> getlog f1 trace
  out = session_->command("getlog f1 trace");
  EXPECT_EQ(out.find("failed"), std::string::npos) << out;

  // The retrieved trace is on the controller's machine and contains the
  // flagged events (and only those): connects/accepts/sends/receives.
  auto text = world_.machine(machines_[0]).fs.read_text("trace");
  ASSERT_TRUE(text.has_value());
  analysis::Trace trace = analysis::read_trace(*text);
  EXPECT_EQ(trace.malformed, 0u);
  ASSERT_GT(trace.events.size(), 0u);
  int sends = 0, recvs = 0, accepts = 0, connects = 0;
  for (const auto& e : trace.events) {
    switch (e.type) {
      case meter::EventType::send: ++sends; break;
      case meter::EventType::recv: ++recvs; break;
      case meter::EventType::accept: ++accepts; break;
      case meter::EventType::connect: ++connects; break;
      case meter::EventType::sockcrt:
      case meter::EventType::destsock:
      case meter::EventType::recvcall:
      case meter::EventType::dup:
      case meter::EventType::termproc:
        ADD_FAILURE() << "unflagged event in trace: "
                      << meter::event_name(e.type);
        break;
      default:
        break;
    }
  }
  // 3 ping-pong rounds: 3 sends each way plus the connection handshake.
  // (The client's final report line to its redirected stdout is itself a
  // metered send on the gateway socket — stdio redirection is IPC.)
  EXPECT_EQ(connects, 1);
  EXPECT_EQ(accepts, 1);
  EXPECT_GE(sends, 6);
  EXPECT_LE(sends, 8);
  EXPECT_GE(recvs, 6);

  // <Control> bye
  session_->send_line("bye");
  world_.run();
  EXPECT_FALSE(session_->controller_alive());
}

TEST_F(SessionTest, HelpListsEveryCommand) {
  const std::string out = session_->command("help");
  for (const char* cmd :
       {"filter", "newjob", "addprocess", "acquire", "setflags", "startjob",
        "stopjob", "removejob", "removeprocess", "jobs", "getlog", "source",
        "sink", "die"}) {
    EXPECT_NE(out.find(cmd), std::string::npos) << "missing " << cmd;
  }
}

TEST_F(SessionTest, NewjobRequiresFilter) {
  const std::string out = session_->command("newjob foo");
  EXPECT_NE(out.find("no filter"), std::string::npos) << out;
}

TEST_F(SessionTest, StopjobFreezesNewProcesses) {
  (void)session_->command("filter f1");
  (void)session_->command("newjob j");
  (void)session_->command("addprocess j red hello");
  std::string out = session_->command("stopjob j");
  EXPECT_NE(out.find("'hello' stopped."), std::string::npos) << out;
  out = session_->command("jobs j");
  EXPECT_NE(out.find("stopped"), std::string::npos) << out;
  // Stopped processes can be started again.
  out = session_->command("startjob j");
  EXPECT_NE(out.find("'hello' started."), std::string::npos) << out;
  world_.run();
}

TEST_F(SessionTest, RemovejobRefusesWhileNewOrRunning) {
  (void)session_->command("filter f1");
  (void)session_->command("newjob j");
  (void)session_->command("addprocess j red hello");
  std::string out = session_->command("removejob j");
  EXPECT_NE(out.find("not removed"), std::string::npos) << out;
  // Stop it, then removal kills and removes.
  (void)session_->command("stopjob j");
  out = session_->command("removejob j");
  EXPECT_NE(out.find("'hello' removed"), std::string::npos) << out;
}

TEST_F(SessionTest, JobsListsJobsAndProcesses) {
  (void)session_->command("filter f1");
  (void)session_->command("newjob alpha");
  (void)session_->command("newjob beta");
  std::string out = session_->command("jobs");
  EXPECT_NE(out.find("alpha"), std::string::npos);
  EXPECT_NE(out.find("beta"), std::string::npos);
  (void)session_->command("addprocess alpha red hello");
  out = session_->command("jobs alpha");
  EXPECT_NE(out.find("new"), std::string::npos) << out;
  EXPECT_NE(out.find("hello"), std::string::npos) << out;
  EXPECT_NE(out.find("red"), std::string::npos) << out;
}

TEST_F(SessionTest, DieWarnsWithActiveProcesses) {
  (void)session_->command("filter f1");
  (void)session_->command("newjob j");
  (void)session_->command("addprocess j red hello");
  std::string out = session_->command("die");
  EXPECT_NE(out.find("repeat to exit"), std::string::npos) << out;
  EXPECT_TRUE(session_->controller_alive());
  (void)session_->command("die");
  world_.run();
  EXPECT_FALSE(session_->controller_alive());
}

TEST_F(SessionTest, DieKillsFilters) {
  (void)session_->command("filter f1 blue");
  kernel::Pid filter_pid = 0;
  {
    // Find the filter process on blue.
    auto& m = world_.machine(machines_[3]);
    for (auto& [pid, p] : m.procs) {
      if (p->name == "filter") filter_pid = pid;
    }
  }
  ASSERT_NE(filter_pid, 0);
  (void)session_->command("bye");
  world_.run();
  kernel::Process* fp = world_.find_process(machines_[3], filter_pid);
  ASSERT_NE(fp, nullptr);
  EXPECT_EQ(fp->status, kernel::ProcStatus::dead);
}

TEST_F(SessionTest, SourceAndSinkScripting) {
  // Build a command script on the controller's machine and source it;
  // output goes to a sink file (§4.3).
  world_.machine(machines_[0]).fs.put_text(
      "script",
      "sink transcript\n"
      "filter f1\n"
      "newjob foo\n"
      "jobs\n"
      "sink\n",
      100);
  std::string out = session_->command("source script");
  // With the sink active, the jobs listing went to the file, not the tty.
  auto transcript = world_.machine(machines_[0]).fs.read_text("transcript");
  ASSERT_TRUE(transcript.has_value());
  EXPECT_NE(transcript->find("foo"), std::string::npos) << *transcript;
}

TEST_F(SessionTest, SourceDepthLimited) {
  // A self-sourcing script must stop at the nesting limit (16) instead of
  // looping forever.
  world_.machine(machines_[0]).fs.put_text("loop", "source loop\n", 100);
  std::string out = session_->command("source loop");
  EXPECT_NE(out.find("nesting too deep"), std::string::npos) << out;
  EXPECT_TRUE(session_->controller_alive());
}

TEST_F(SessionTest, UnknownCommandAndBadParameters) {
  std::string out = session_->command("frobnicate");
  EXPECT_NE(out.find("unknown command"), std::string::npos);
  out = session_->command("newjob bad*name");
  EXPECT_NE(out.find("bad parameter"), std::string::npos);
}

TEST_F(SessionTest, FilterListing) {
  (void)session_->command("filter f1 blue");
  (void)session_->command("filter f2 red");
  std::string out = session_->command("filter");
  EXPECT_NE(out.find("f1 blue"), std::string::npos) << out;
  EXPECT_NE(out.find("f2 red"), std::string::npos) << out;
}

}  // namespace
}  // namespace dpm::control
