file(REMOVE_RECURSE
  "CMakeFiles/dpm_util.dir/util/bytes.cc.o"
  "CMakeFiles/dpm_util.dir/util/bytes.cc.o.d"
  "CMakeFiles/dpm_util.dir/util/logging.cc.o"
  "CMakeFiles/dpm_util.dir/util/logging.cc.o.d"
  "CMakeFiles/dpm_util.dir/util/result.cc.o"
  "CMakeFiles/dpm_util.dir/util/result.cc.o.d"
  "CMakeFiles/dpm_util.dir/util/rng.cc.o"
  "CMakeFiles/dpm_util.dir/util/rng.cc.o.d"
  "CMakeFiles/dpm_util.dir/util/strings.cc.o"
  "CMakeFiles/dpm_util.dir/util/strings.cc.o.d"
  "CMakeFiles/dpm_util.dir/util/time.cc.o"
  "CMakeFiles/dpm_util.dir/util/time.cc.o.d"
  "libdpm_util.a"
  "libdpm_util.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dpm_util.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
