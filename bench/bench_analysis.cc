// E6 — the analysis routines (§3.3): real-time throughput of trace
// parsing, communication statistics, structure recovery, ordering and
// parallelism over synthetic traces of growing size, plus ordering
// recovery under heavy clock skew.
//
// Counters:
//   events_per_s   analysis throughput (real time)
//   pairs          matched send/receive pairs found
//   anomalies      clock anomalies detected
#include <benchmark/benchmark.h>

#include "analysis/report.h"
#include "filter/descriptions.h"
#include "filter/trace.h"
#include "meter/metermsgs.h"

namespace dpm::bench {
namespace {

/// A synthetic trace: `pairs` processes on distinct machines, each pair
/// exchanging `msgs` messages over a matched connection, with per-machine
/// clock offsets to stress the alignment logic.
std::string synthetic_trace(int pairs, int msgs, std::int64_t skew_us) {
  const filter::Descriptions desc =
      *filter::Descriptions::parse(filter::default_descriptions_text());
  std::string out;
  auto emit = [&](meter::MeterBody body, std::uint16_t machine,
                  std::int64_t t) {
    meter::MeterMsg m;
    m.body = std::move(body);
    m.header.machine = machine;
    m.header.cpu_time = t + machine * skew_us;
    m.header.proc_time = 0;
    auto rec = desc.decode(m.serialize());
    out += filter::trace_line(*rec, {});
  };

  for (int p = 0; p < pairs; ++p) {
    const auto ma = static_cast<std::uint16_t>(2 * p);
    const auto mb = static_cast<std::uint16_t>(2 * p + 1);
    const std::int32_t pid_a = 100 + p, pid_b = 200 + p;
    const std::string name_a = std::to_string(1000000 + p);
    const std::string name_b = std::to_string(2000000 + p);
    emit(meter::MeterConnect{pid_a, 0, 10, name_a, name_b}, ma, 0);
    emit(meter::MeterAccept{pid_b, 0, 20, 21, name_b, name_a}, mb, 500);
    for (int i = 0; i < msgs; ++i) {
      const std::int64_t t = 1000 + i * 400;
      emit(meter::MeterSend{pid_a, 0, 10,
                            static_cast<std::uint32_t>(64 + i % 32), ""},
           ma, t);
      emit(meter::MeterRecvCall{pid_b, 0, 21}, mb, t + 100);
      emit(meter::MeterRecv{pid_b, 0, 21,
                            static_cast<std::uint32_t>(64 + i % 32), ""},
           mb, t + 200);
    }
    emit(meter::MeterTermProc{pid_a, 0, 0}, ma, 1000 + msgs * 400);
    emit(meter::MeterTermProc{pid_b, 0, 0}, mb, 1200 + msgs * 400);
  }
  return out;
}

void BM_TraceParse(benchmark::State& state) {
  const std::string text = synthetic_trace(static_cast<int>(state.range(0)),
                                           50, 0);
  std::size_t events = 0;
  for (auto _ : state) {
    analysis::Trace t = analysis::read_trace(text);
    benchmark::DoNotOptimize(t.events.data());
    events += t.events.size();
  }
  state.counters["events_per_s"] = benchmark::Counter(
      static_cast<double>(events), benchmark::Counter::kIsRate);
}

void BM_CommStats(benchmark::State& state) {
  const analysis::Trace trace = analysis::read_trace(
      synthetic_trace(static_cast<int>(state.range(0)), 50, 0));
  std::size_t events = 0;
  for (auto _ : state) {
    analysis::CommStats s = analysis::communication_statistics(trace);
    benchmark::DoNotOptimize(s.total_events);
    events += trace.events.size();
  }
  state.counters["events_per_s"] = benchmark::Counter(
      static_cast<double>(events), benchmark::Counter::kIsRate);
}

void BM_Ordering(benchmark::State& state) {
  const analysis::Trace trace = analysis::read_trace(
      synthetic_trace(static_cast<int>(state.range(0)), 50, 0));
  std::size_t events = 0, pairs = 0;
  for (auto _ : state) {
    analysis::Ordering o = analysis::order_events(trace);
    benchmark::DoNotOptimize(o.message_pairs);
    events += trace.events.size();
    pairs = o.message_pairs;
  }
  state.counters["events_per_s"] = benchmark::Counter(
      static_cast<double>(events), benchmark::Counter::kIsRate);
  state.counters["pairs"] = static_cast<double>(pairs);
}

void BM_OrderingUnderSkew(benchmark::State& state) {
  // Heavy skew: every cross-machine pair is a clock anomaly, yet ordering
  // recovery and alignment still work (§4.1's point that order must be
  // deduced from the trace, not the clocks).
  const analysis::Trace trace =
      analysis::read_trace(synthetic_trace(4, 100, -60000));
  std::size_t anomalies = 0;
  for (auto _ : state) {
    analysis::Ordering o = analysis::order_events(trace);
    analysis::ClockAlignment a =
        analysis::estimate_clock_alignment(trace, o);
    benchmark::DoNotOptimize(a.offset_us.size());
    anomalies = o.clock_anomalies;
  }
  state.counters["anomalies"] = static_cast<double>(anomalies);
}

void BM_Parallelism(benchmark::State& state) {
  const analysis::Trace trace = analysis::read_trace(
      synthetic_trace(static_cast<int>(state.range(0)), 50, 3000));
  for (auto _ : state) {
    analysis::ParallelismProfile p = analysis::measure_parallelism(trace);
    benchmark::DoNotOptimize(p.average);
  }
}

void BM_FullReport(benchmark::State& state) {
  const analysis::Trace trace = analysis::read_trace(
      synthetic_trace(static_cast<int>(state.range(0)), 50, 2000));
  for (auto _ : state) {
    std::string report = analysis::full_report(trace);
    benchmark::DoNotOptimize(report);
  }
}

BENCHMARK(BM_TraceParse)->Arg(2)->Arg(8)->Arg(32);
BENCHMARK(BM_CommStats)->Arg(2)->Arg(8)->Arg(32);
BENCHMARK(BM_Ordering)->Arg(2)->Arg(8)->Arg(32);
BENCHMARK(BM_OrderingUnderSkew);
BENCHMARK(BM_Parallelism)->Arg(2)->Arg(8);
BENCHMARK(BM_FullReport)->Arg(8);

}  // namespace
}  // namespace dpm::bench

BENCHMARK_MAIN();
