#include "daemon/protocol.h"

#include <algorithm>

#include "kernel/world.h"
#include "obs/span.h"
#include "util/bytes.h"

namespace dpm::daemon {

using util::BinaryReader;
using util::BinaryWriter;
using util::Bytes;
using util::Err;

MsgType msg_type(const DaemonMsg& m) {
  struct Visitor {
    MsgType operator()(const CreateRequest&) { return MsgType::create_request; }
    MsgType operator()(const CreateReply&) { return MsgType::create_reply; }
    MsgType operator()(const FilterRequest&) { return MsgType::filter_request; }
    MsgType operator()(const FilterReply&) { return MsgType::filter_reply; }
    MsgType operator()(const SetFlagsRequest&) { return MsgType::setflags_request; }
    MsgType operator()(const ProcRequest& p) { return p.what; }
    MsgType operator()(const AcquireRequest&) { return MsgType::acquire_request; }
    MsgType operator()(const SimpleReply&) { return MsgType::simple_reply; }
    MsgType operator()(const StateNote&) { return MsgType::state_note; }
    MsgType operator()(const IoNote&) { return MsgType::io_note; }
    MsgType operator()(const IoSend&) { return MsgType::io_send; }
    MsgType operator()(const BatchCreateRequest&) {
      return MsgType::batch_create_request;
    }
    MsgType operator()(const BatchCreateReply&) {
      return MsgType::batch_create_reply;
    }
    MsgType operator()(const BatchProcRequest&) {
      return MsgType::batch_proc_request;
    }
    MsgType operator()(const BatchProcReply&) {
      return MsgType::batch_proc_reply;
    }
  };
  return std::visit(Visitor{}, m);
}

namespace {

struct BodyWriter {
  BinaryWriter& w;

  void operator()(const CreateRequest& b) {
    w.i32(b.uid);
    w.lstring(b.filename);
    w.u32(static_cast<std::uint32_t>(b.params.size()));
    for (const auto& p : b.params) w.lstring(p);
    w.u16(b.filter_port);
    w.lstring(b.filter_host);
    w.u32(b.meter_flags);
    w.u16(b.control_port);
    w.lstring(b.control_host);
    w.lstring(b.stdin_file);
    w.u64(b.nonce);
  }
  void operator()(const CreateReply& b) {
    w.i32(b.pid);
    w.i32(b.status);
  }
  void operator()(const FilterRequest& b) {
    w.i32(b.uid);
    w.lstring(b.filterfile);
    w.lstring(b.logfile);
    w.lstring(b.descriptions);
    w.lstring(b.templates);
    w.u16(b.control_port);
    w.lstring(b.control_host);
    w.u64(b.nonce);
    w.u8(b.mode);
    w.lstring(b.parent_host);
    w.u16(b.parent_port);
  }
  void operator()(const FilterReply& b) {
    w.i32(b.pid);
    w.i32(b.status);
    w.u16(b.meter_port);
  }
  void operator()(const SetFlagsRequest& b) {
    w.i32(b.uid);
    w.i32(b.pid);
    w.u32(b.flags);
  }
  void operator()(const ProcRequest& b) {
    w.i32(b.uid);
    w.i32(b.pid);
  }
  void operator()(const AcquireRequest& b) {
    w.i32(b.uid);
    w.i32(b.pid);
    w.u16(b.filter_port);
    w.lstring(b.filter_host);
    w.u32(b.meter_flags);
  }
  void operator()(const SimpleReply& b) { w.i32(b.status); }
  void operator()(const StateNote& b) {
    w.lstring(b.machine);
    w.i32(b.pid);
    w.u8(b.event);
    w.i32(b.status);
  }
  void operator()(const IoNote& b) {
    w.lstring(b.machine);
    w.i32(b.pid);
    w.lstring(b.data);
  }
  void operator()(const IoSend& b) {
    w.i32(b.uid);
    w.i32(b.pid);
    w.lstring(b.data);
  }
  void operator()(const BatchCreateRequest& b) {
    w.i32(b.uid);
    w.u32(static_cast<std::uint32_t>(b.items.size()));
    for (const auto& item : b.items) {
      w.lstring(item.filename);
      w.u32(static_cast<std::uint32_t>(item.params.size()));
      for (const auto& p : item.params) w.lstring(p);
    }
    w.u16(b.filter_port);
    w.lstring(b.filter_host);
    w.u32(b.meter_flags);
    w.u16(b.control_port);
    w.lstring(b.control_host);
    w.u64(b.nonce);
  }
  void operator()(const BatchCreateReply& b) {
    w.u64(b.nonce);
    w.u32(static_cast<std::uint32_t>(b.pids.size()));
    for (std::int32_t pid : b.pids) w.i32(pid);
    w.u32(static_cast<std::uint32_t>(b.statuses.size()));
    for (std::int32_t st : b.statuses) w.i32(st);
  }
  void operator()(const BatchProcRequest& b) {
    w.u32(static_cast<std::uint32_t>(b.what));
    w.i32(b.uid);
    w.u64(b.nonce);
    w.u32(static_cast<std::uint32_t>(b.pids.size()));
    for (std::int32_t pid : b.pids) w.i32(pid);
  }
  void operator()(const BatchProcReply& b) {
    w.u64(b.nonce);
    w.u32(static_cast<std::uint32_t>(b.statuses.size()));
    for (std::int32_t st : b.statuses) w.i32(st);
  }
};

}  // namespace

Bytes serialize(const DaemonMsg& m) {
  BinaryWriter w;
  w.u32(0);  // size back-patched
  w.u32(static_cast<std::uint32_t>(msg_type(m)));
  std::visit(BodyWriter{w}, m);
  w.patch_u32(0, static_cast<std::uint32_t>(w.size()));
  return w.take();
}

namespace {

template <typename T>
std::optional<DaemonMsg> finish(std::optional<T> v) {
  if (!v) return std::nullopt;
  return DaemonMsg{std::move(*v)};
}

std::optional<CreateRequest> parse_create(BinaryReader& r) {
  CreateRequest b;
  auto uid = r.i32();
  auto fn = r.lstring();
  auto n = r.u32();
  if (!uid || !fn || !n || *n > 1024) return std::nullopt;
  b.uid = *uid;
  b.filename = *fn;
  for (std::uint32_t i = 0; i < *n; ++i) {
    auto p = r.lstring();
    if (!p) return std::nullopt;
    b.params.push_back(std::move(*p));
  }
  auto fp = r.u16();
  auto fh = r.lstring();
  auto mf = r.u32();
  auto cp = r.u16();
  auto ch = r.lstring();
  auto sf = r.lstring();
  auto nn = r.u64();
  if (!fp || !fh || !mf || !cp || !ch || !sf || !nn) return std::nullopt;
  b.filter_port = *fp;
  b.filter_host = *fh;
  b.meter_flags = *mf;
  b.control_port = *cp;
  b.control_host = *ch;
  b.stdin_file = *sf;
  b.nonce = *nn;
  return b;
}

std::optional<BatchCreateRequest> parse_batch_create(BinaryReader& r) {
  BatchCreateRequest b;
  auto uid = r.i32();
  auto n = r.u32();
  if (!uid || !n || *n > 4096) return std::nullopt;
  b.uid = *uid;
  for (std::uint32_t i = 0; i < *n; ++i) {
    BatchCreateRequest::Item item;
    auto fn = r.lstring();
    auto np = r.u32();
    if (!fn || !np || *np > 1024) return std::nullopt;
    item.filename = std::move(*fn);
    for (std::uint32_t j = 0; j < *np; ++j) {
      auto p = r.lstring();
      if (!p) return std::nullopt;
      item.params.push_back(std::move(*p));
    }
    b.items.push_back(std::move(item));
  }
  auto fp = r.u16();
  auto fh = r.lstring();
  auto mf = r.u32();
  auto cp = r.u16();
  auto ch = r.lstring();
  auto nn = r.u64();
  if (!fp || !fh || !mf || !cp || !ch || !nn) return std::nullopt;
  b.filter_port = *fp;
  b.filter_host = *fh;
  b.meter_flags = *mf;
  b.control_port = *cp;
  b.control_host = *ch;
  b.nonce = *nn;
  return b;
}

std::optional<std::vector<std::int32_t>> parse_i32_list(BinaryReader& r) {
  auto n = r.u32();
  if (!n || *n > 65536) return std::nullopt;
  std::vector<std::int32_t> out;
  out.reserve(*n);
  for (std::uint32_t i = 0; i < *n; ++i) {
    auto v = r.i32();
    if (!v) return std::nullopt;
    out.push_back(*v);
  }
  return out;
}

std::optional<FilterRequest> parse_filter(BinaryReader& r) {
  FilterRequest b;
  auto uid = r.i32();
  auto ff = r.lstring();
  auto lf = r.lstring();
  auto de = r.lstring();
  auto te = r.lstring();
  auto cp = r.u16();
  auto ch = r.lstring();
  auto nn = r.u64();
  auto mo = r.u8();
  auto ph = r.lstring();
  auto pp = r.u16();
  if (!uid || !ff || !lf || !de || !te || !cp || !ch || !nn || !mo || !ph ||
      !pp || *mo > 2) {
    return std::nullopt;
  }
  b.uid = *uid;
  b.filterfile = *ff;
  b.logfile = *lf;
  b.descriptions = *de;
  b.templates = *te;
  b.control_port = *cp;
  b.control_host = *ch;
  b.nonce = *nn;
  b.mode = *mo;
  b.parent_host = *ph;
  b.parent_port = *pp;
  return b;
}

}  // namespace

std::optional<DaemonMsg> parse(const Bytes& wire) {
  BinaryReader r(wire);
  auto size = r.u32();
  auto type = r.u32();
  if (!size || !type || *size != wire.size()) return std::nullopt;

  switch (static_cast<MsgType>(*type)) {
    case MsgType::create_request:
      return finish(parse_create(r));
    case MsgType::create_reply: {
      CreateReply b;
      auto pid = r.i32();
      auto st = r.i32();
      if (!pid || !st) return std::nullopt;
      b.pid = *pid;
      b.status = *st;
      return DaemonMsg{b};
    }
    case MsgType::filter_request:
      return finish(parse_filter(r));
    case MsgType::filter_reply: {
      FilterReply b;
      auto pid = r.i32();
      auto st = r.i32();
      auto mp = r.u16();
      if (!pid || !st || !mp) return std::nullopt;
      b.pid = *pid;
      b.status = *st;
      b.meter_port = *mp;
      return DaemonMsg{b};
    }
    case MsgType::setflags_request: {
      SetFlagsRequest b;
      auto uid = r.i32();
      auto pid = r.i32();
      auto fl = r.u32();
      if (!uid || !pid || !fl) return std::nullopt;
      b.uid = *uid;
      b.pid = *pid;
      b.flags = *fl;
      return DaemonMsg{b};
    }
    case MsgType::start_request:
    case MsgType::stop_request:
    case MsgType::kill_request:
    case MsgType::release_request:
    case MsgType::status_request: {
      ProcRequest b;
      b.what = static_cast<MsgType>(*type);
      auto uid = r.i32();
      auto pid = r.i32();
      if (!uid || !pid) return std::nullopt;
      b.uid = *uid;
      b.pid = *pid;
      return DaemonMsg{b};
    }
    case MsgType::acquire_request: {
      AcquireRequest b;
      auto uid = r.i32();
      auto pid = r.i32();
      auto fp = r.u16();
      auto fh = r.lstring();
      auto mf = r.u32();
      if (!uid || !pid || !fp || !fh || !mf) return std::nullopt;
      b.uid = *uid;
      b.pid = *pid;
      b.filter_port = *fp;
      b.filter_host = *fh;
      b.meter_flags = *mf;
      return DaemonMsg{b};
    }
    case MsgType::simple_reply: {
      SimpleReply b;
      auto st = r.i32();
      if (!st) return std::nullopt;
      b.status = *st;
      return DaemonMsg{b};
    }
    case MsgType::state_note: {
      StateNote b;
      auto m = r.lstring();
      auto pid = r.i32();
      auto ev = r.u8();
      auto st = r.i32();
      if (!m || !pid || !ev || !st) return std::nullopt;
      b.machine = *m;
      b.pid = *pid;
      b.event = *ev;
      b.status = *st;
      return DaemonMsg{b};
    }
    case MsgType::io_note: {
      IoNote b;
      auto m = r.lstring();
      auto pid = r.i32();
      auto data = r.lstring();
      if (!m || !pid || !data) return std::nullopt;
      b.machine = *m;
      b.pid = *pid;
      b.data = *data;
      return DaemonMsg{b};
    }
    case MsgType::batch_create_request:
      return finish(parse_batch_create(r));
    case MsgType::batch_create_reply: {
      BatchCreateReply b;
      auto nn = r.u64();
      auto pids = parse_i32_list(r);
      auto sts = parse_i32_list(r);
      if (!nn || !pids || !sts || pids->size() != sts->size())
        return std::nullopt;
      b.nonce = *nn;
      b.pids = std::move(*pids);
      b.statuses = std::move(*sts);
      return DaemonMsg{std::move(b)};
    }
    case MsgType::batch_proc_request: {
      BatchProcRequest b;
      auto what = r.u32();
      auto uid = r.i32();
      auto nn = r.u64();
      auto pids = parse_i32_list(r);
      if (!what || !uid || !nn || !pids) return std::nullopt;
      const auto inner = static_cast<MsgType>(*what);
      if (inner != MsgType::start_request && inner != MsgType::stop_request &&
          inner != MsgType::kill_request && inner != MsgType::release_request &&
          inner != MsgType::status_request) {
        return std::nullopt;
      }
      b.what = inner;
      b.uid = *uid;
      b.nonce = *nn;
      b.pids = std::move(*pids);
      return DaemonMsg{std::move(b)};
    }
    case MsgType::batch_proc_reply: {
      BatchProcReply b;
      auto nn = r.u64();
      auto sts = parse_i32_list(r);
      if (!nn || !sts) return std::nullopt;
      b.nonce = *nn;
      b.statuses = std::move(*sts);
      return DaemonMsg{std::move(b)};
    }
    case MsgType::io_send: {
      IoSend b;
      auto uid = r.i32();
      auto pid = r.i32();
      auto data = r.lstring();
      if (!uid || !pid || !data) return std::nullopt;
      b.uid = *uid;
      b.pid = *pid;
      b.data = *data;
      return DaemonMsg{b};
    }
  }
  return std::nullopt;
}

util::SysResult<void> send_msg(kernel::Sys& sys, kernel::Fd fd,
                               const DaemonMsg& m) {
  auto r = sys.send(fd, serialize(m));
  if (!r) return r.error();
  return {};
}

util::SysResult<DaemonMsg> recv_msg(kernel::Sys& sys, kernel::Fd fd) {
  auto head = sys.recv_exact(fd, 4);
  if (!head) return head.error();
  const std::uint32_t size = static_cast<std::uint32_t>((*head)[0]) |
                             static_cast<std::uint32_t>((*head)[1]) << 8 |
                             static_cast<std::uint32_t>((*head)[2]) << 16 |
                             static_cast<std::uint32_t>((*head)[3]) << 24;
  if (size < 8 || size > (1u << 20)) return Err::einval;
  auto rest = sys.recv_exact(fd, size - 4);
  if (!rest) return rest.error();
  Bytes wire = std::move(*head);
  wire.insert(wire.end(), rest->begin(), rest->end());
  auto msg = parse(wire);
  if (!msg) return Err::einval;
  return *msg;
}

namespace {

/// recv_exact with an absolute deadline: selects before each recv so a
/// stalled peer yields etimedout instead of parking the reader forever.
/// EOF mid-message is still econnreset, as for the unbounded variant.
util::SysResult<Bytes> recv_exact_by(kernel::Sys& sys, kernel::Fd fd,
                                     std::size_t n, util::TimePoint deadline) {
  Bytes out;
  while (out.size() < n) {
    const util::TimePoint now = sys.world().now();
    if (now >= deadline) return Err::etimedout;
    auto sel = sys.select({fd}, /*child_events=*/false, deadline - now);
    if (!sel) return sel.error();
    if (sel->timed_out) return Err::etimedout;
    auto chunk = sys.recv(fd, n - out.size());
    if (!chunk) return chunk.error();
    if (chunk->empty()) return Err::econnreset;  // EOF mid-message
    out.insert(out.end(), chunk->begin(), chunk->end());
  }
  return out;
}

}  // namespace

util::SysResult<DaemonMsg> recv_msg(kernel::Sys& sys, kernel::Fd fd,
                                    util::Duration deadline) {
  const util::TimePoint by = sys.world().now() + deadline;
  auto head = recv_exact_by(sys, fd, 4, by);
  if (!head) return head.error();
  const std::uint32_t size = static_cast<std::uint32_t>((*head)[0]) |
                             static_cast<std::uint32_t>((*head)[1]) << 8 |
                             static_cast<std::uint32_t>((*head)[2]) << 16 |
                             static_cast<std::uint32_t>((*head)[3]) << 24;
  if (size < 8 || size > (1u << 20)) return Err::einval;
  auto rest = recv_exact_by(sys, fd, size - 4, by);
  if (!rest) return rest.error();
  Bytes wire = std::move(*head);
  wire.insert(wire.end(), rest->begin(), rest->end());
  auto msg = parse(wire);
  if (!msg) return Err::einval;
  return *msg;
}

namespace {

/// Metric-key fragment for a request type ("daemon.rpc_<name>_us").
const char* rpc_name(MsgType t) {
  switch (t) {
    case MsgType::create_request: return "create";
    case MsgType::filter_request: return "filter";
    case MsgType::setflags_request: return "setflags";
    case MsgType::start_request: return "start";
    case MsgType::stop_request: return "stop";
    case MsgType::kill_request: return "kill";
    case MsgType::acquire_request: return "acquire";
    case MsgType::release_request: return "release";
    case MsgType::status_request: return "status";
    case MsgType::batch_create_request: return "batch_create";
    case MsgType::batch_proc_request: return "batch_proc";
    default: return "other";
  }
}

}  // namespace

util::SysResult<DaemonMsg> rpc_call(kernel::Sys& sys, const net::SockAddr& to,
                                    const DaemonMsg& request) {
  // Client-side request→reply latency, one histogram per request type.
  // RPCs are control-plane rare, so the by-name histogram lookup is fine.
  obs::Registry& reg = sys.world().obs();
  const std::string name = rpc_name(msg_type(request));
  reg.counter("daemon.rpc_calls").add(1);
  obs::ObsSpan span(reg, "daemon.rpc_" + name,
                    &reg.histogram("daemon.rpc_" + name + "_us"));

  auto fd = sys.socket(kernel::SockDomain::internet, kernel::SockType::stream);
  if (!fd) return fd.error();
  auto conn = sys.connect(*fd, to);
  if (!conn) {
    (void)sys.close(*fd);
    reg.counter("daemon.rpc_failures").add(1);
    return conn.error();
  }
  auto sent = send_msg(sys, *fd, request);
  if (!sent) {
    (void)sys.close(*fd);
    reg.counter("daemon.rpc_failures").add(1);
    return sent.error();
  }
  auto reply = recv_msg(sys, *fd);
  (void)sys.close(*fd);
  if (!reply) reg.counter("daemon.rpc_failures").add(1);
  return reply;
}

namespace {

/// Whether one failed attempt is worth another try on a fresh connection.
bool retryable(Err e) {
  return e == Err::etimedout || e == Err::econnrefused ||
         e == Err::econnreset || e == Err::epipe;
}

/// One bounded attempt: connect (deadline), send, await the reply
/// (same deadline), close. Always tears the connection down.
util::SysResult<DaemonMsg> rpc_attempt(kernel::Sys& sys,
                                       const net::SockAddr& to,
                                       const DaemonMsg& request,
                                       util::Duration deadline) {
  auto fd = sys.socket(kernel::SockDomain::internet, kernel::SockType::stream);
  if (!fd) return fd.error();
  auto conn = sys.connect(*fd, to, deadline);
  if (!conn) {
    (void)sys.close(*fd);
    return conn.error();
  }
  auto sent = send_msg(sys, *fd, request);
  if (!sent) {
    (void)sys.close(*fd);
    return sent.error();
  }
  auto reply = recv_msg(sys, *fd, deadline);
  (void)sys.close(*fd);
  return reply;
}

}  // namespace

util::SysResult<DaemonMsg> rpc_call(kernel::Sys& sys, const net::SockAddr& to,
                                    const DaemonMsg& request,
                                    const RpcOptions& opts) {
  obs::Registry& reg = sys.world().obs();
  const std::string name = rpc_name(msg_type(request));
  reg.counter("daemon.rpc_calls").add(1);
  obs::ObsSpan span(reg, "daemon.rpc_" + name,
                    &reg.histogram("daemon.rpc_" + name + "_us"));

  util::Duration pause = opts.backoff;
  util::SysResult<DaemonMsg> last = Err::etimedout;
  const int attempts = opts.max_attempts < 1 ? 1 : opts.max_attempts;
  for (int attempt = 0; attempt < attempts; ++attempt) {
    if (attempt > 0) {
      reg.counter("daemon.rpc_retries").add(1);
      sys.sleep(pause);
      pause = std::min(pause + pause, opts.backoff_max);
    }
    last = rpc_attempt(sys, to, request, opts.deadline);
    if (last) return last;
    if (last.error() == Err::etimedout) {
      reg.counter("daemon.rpc_timeouts").add(1);
    }
    if (!retryable(last.error())) break;
  }
  reg.counter("daemon.rpc_failures").add(1);
  return last;
}

util::SysResult<void> notify(kernel::Sys& sys, const net::SockAddr& to,
                             const DaemonMsg& note) {
  auto fd = sys.socket(kernel::SockDomain::internet, kernel::SockType::stream);
  if (!fd) return fd.error();
  // Bounded connect: a dead or partitioned controller must not wedge the
  // daemon's notification path; the note is simply lost.
  auto conn = sys.connect(*fd, to, util::msec(250));
  if (!conn) {
    (void)sys.close(*fd);
    return conn.error();
  }
  auto sent = send_msg(sys, *fd, note);
  (void)sys.close(*fd);
  if (!sent) return sent.error();
  return {};
}

}  // namespace dpm::daemon
