// The process state machine of Fig 4.2 and job bookkeeping.
#include "control/job.h"

#include <gtest/gtest.h>

#include "meter/meterflags.h"

namespace dpm::control {
namespace {

TEST(StateMachine, Fig42TransitionsExactly) {
  using S = ProcState;
  struct Case {
    S from, to;
    bool allowed;
  };
  const Case cases[] = {
      // From new: start or stop, never directly killed.
      {S::fresh, S::running, true},
      {S::fresh, S::stopped, true},
      {S::fresh, S::killed, false},  // "precautionary measure"
      {S::fresh, S::acquired, false},
      // Running <-> stopped; running completes to killed.
      {S::running, S::stopped, true},
      {S::running, S::killed, true},
      {S::running, S::fresh, false},
      {S::running, S::acquired, false},
      // Stopped resumes or is killed at removal.
      {S::stopped, S::running, true},
      {S::stopped, S::killed, true},
      {S::stopped, S::fresh, false},
      // "A process cannot be restarted once it has been killed."
      {S::killed, S::running, false},
      {S::killed, S::stopped, false},
      {S::killed, S::fresh, false},
      // "An acquired process cannot be stopped or killed, it can only be
      // metered."
      {S::acquired, S::running, false},
      {S::acquired, S::stopped, false},
      {S::acquired, S::killed, false},
  };
  for (const auto& c : cases) {
    EXPECT_EQ(can_transition(c.from, c.to), c.allowed)
        << proc_state_name(c.from) << " -> " << proc_state_name(c.to);
  }
}

TEST(StateMachine, SelfTransitionsDisallowed) {
  for (ProcState s : {ProcState::fresh, ProcState::acquired,
                      ProcState::running, ProcState::stopped,
                      ProcState::killed}) {
    EXPECT_FALSE(can_transition(s, s));
  }
}

TEST(StateMachine, Names) {
  EXPECT_STREQ(proc_state_name(ProcState::fresh), "new");
  EXPECT_STREQ(proc_state_name(ProcState::acquired), "acquired");
  EXPECT_STREQ(proc_state_name(ProcState::killed), "killed");
}

TEST(Job, RemovableOnlyWhenNoNewOrRunning) {
  Job job;
  job.procs.push_back({"A", "red", 1, ProcState::killed, 0});
  job.procs.push_back({"B", "green", 2, ProcState::stopped, 0});
  job.procs.push_back({"C", "blue", 3, ProcState::acquired, 0});
  EXPECT_TRUE(job.removable());
  job.procs.push_back({"D", "red", 4, ProcState::running, 0});
  EXPECT_FALSE(job.removable());
  job.procs.back().state = ProcState::fresh;
  EXPECT_FALSE(job.removable());
}

TEST(Job, HasActiveUnlessAllKilled) {
  Job job;
  job.procs.push_back({"A", "red", 1, ProcState::killed, 0});
  EXPECT_FALSE(job.has_active());
  job.procs.push_back({"B", "red", 2, ProcState::stopped, 0});
  EXPECT_TRUE(job.has_active());
}

TEST(Job, FindByNameAndPid) {
  Job job;
  job.procs.push_back({"A", "red", 10, ProcState::fresh, 0});
  job.procs.push_back({"B", "green", 10, ProcState::fresh, 0});
  EXPECT_EQ(job.find("A")->machine, "red");
  EXPECT_EQ(job.find("nope"), nullptr);
  // Pids only mean something per machine (§3.5.1): the same pid on two
  // machines must resolve by (machine, pid).
  EXPECT_EQ(job.find_pid("green", 10)->name, "B");
  EXPECT_EQ(job.find_pid("blue", 10), nullptr);
}

TEST(Flags, UnionSemantics) {
  // §4.3: "If two setflags commands are executed, the set of active flags
  // is the union of the two groups of flags."
  auto m1 = apply_flag_tokens(0, {"send", "receive"}, nullptr);
  ASSERT_TRUE(m1.has_value());
  auto m2 = apply_flag_tokens(*m1, {"fork"}, nullptr);
  ASSERT_TRUE(m2.has_value());
  EXPECT_EQ(*m2, meter::M_SEND | meter::M_RECEIVE | meter::M_FORK);
}

TEST(Flags, ExplicitResetWithMinus) {
  auto m = apply_flag_tokens(meter::M_SEND | meter::M_RECEIVE, {"-send"},
                             nullptr);
  ASSERT_TRUE(m.has_value());
  EXPECT_EQ(*m, meter::M_RECEIVE);
}

TEST(Flags, AllAndMinusAll) {
  auto all = apply_flag_tokens(0, {"all"}, nullptr);
  EXPECT_EQ(*all, meter::M_ALL);
  auto none = apply_flag_tokens(meter::M_ALL, {"-all"}, nullptr);
  EXPECT_EQ(*none, 0u);
}

TEST(Flags, UnknownFlagReported) {
  std::string bad;
  auto m = apply_flag_tokens(0, {"send", "bogus"}, &bad);
  EXPECT_FALSE(m.has_value());
  EXPECT_EQ(bad, "bogus");
}

TEST(Flags, PaperSessionFlagList) {
  // Appendix B: "setflags foo send receive fork accept connect".
  auto m = apply_flag_tokens(
      0, {"send", "receive", "fork", "accept", "connect"}, nullptr);
  ASSERT_TRUE(m.has_value());
  EXPECT_EQ(*m, meter::M_SEND | meter::M_RECEIVE | meter::M_FORK |
                    meter::M_ACCEPT | meter::M_CONNECT);
  EXPECT_EQ(meter::flags_to_string(*m), "send receive fork accept connect");
}

}  // namespace
}  // namespace dpm::control
