// E4 — controller/daemon RPC and job setup (§3.5.1).
//
// "The stream connection between the controller and a meterdaemon exists
// for the duration of a single exchange of messages. ... communication
// between the controller and the meterdaemons is infrequent enough that
// establishing these connections as they are needed does not introduce
// significant overhead." The benchmark quantifies the temporary-
// connection exchange against a long-lived connection, and job setup
// latency as processes/machines scale.
//
// Counters:
//   sim_us_per_rpc     simulated cost of one exchange
//   sim_ms_setup       simulated time to build a whole job
#include "bench_util.h"

#include "daemon/protocol.h"

namespace dpm::bench {
namespace {

constexpr int kExchanges = 50;

/// One setflags RPC per exchange against a live daemon.
void BM_RpcTemporaryConnections(benchmark::State& state) {
  double total = 0;
  for (auto _ : state) {
    auto world = make_world(2);
    control::spawn_meterdaemons(*world);
    // A target process on m0 to manipulate.
    auto victim = world->spawn(1, "victim", 100, [](kernel::Sys& sys) {
      sys.sleep(util::sec(30));
    });
    double elapsed = 0;
    // The driver runs on m1 so both RPC strategies cross the network.
    (void)world->spawn(2, "driver", 100, [&](kernel::Sys& sys) {
      sys.sleep(util::msec(5));
      auto addr = sys.resolve("m0", daemon::kDaemonPort);
      const double t0 = sim_us(sys.world());
      for (int i = 0; i < kExchanges; ++i) {
        daemon::SetFlagsRequest req;
        req.uid = 100;
        req.pid = *victim;
        req.flags = meter::M_SEND;
        auto reply = daemon::rpc_call(sys, *addr, req);
        benchmark::DoNotOptimize(reply.ok());
      }
      elapsed = sim_us(sys.world()) - t0;
    });
    world->run_for(util::msec(500));
    (void)world->proc_kill(1, *victim, 100);
    world->run();
    total += elapsed;
  }
  state.counters["sim_us_per_rpc"] =
      total / static_cast<double>(state.iterations()) / kExchanges;
}

/// The same exchanges over one long-lived connection (the design the
/// paper rejected as "undependable ... across machine boundaries").
void BM_RpcLongLivedConnection(benchmark::State& state) {
  double total = 0;
  for (auto _ : state) {
    auto world = make_world(2);
    // A bare echo-style request server standing in for the daemon's
    // dispatcher, so only the connection strategy differs.
    (void)world->spawn(1, "server", 100, [](kernel::Sys& sys) {
      auto ls = sys.socket(kernel::SockDomain::internet,
                           kernel::SockType::stream);
      (void)sys.bind_port(*ls, 700);
      (void)sys.listen(*ls, 4);
      auto conn = sys.accept(*ls);
      for (;;) {
        auto req = daemon::recv_msg(sys, *conn);
        if (!req.ok()) break;
        (void)daemon::send_msg(sys, *conn, daemon::SimpleReply{0});
      }
    });
    double elapsed = 0;
    (void)world->spawn(2, "driver", 100, [&](kernel::Sys& sys) {
      sys.sleep(util::msec(5));
      auto addr = sys.resolve("m0", 700);
      auto fd = sys.socket(kernel::SockDomain::internet,
                           kernel::SockType::stream);
      (void)sys.connect(*fd, *addr);
      const double t0 = sim_us(sys.world());
      for (int i = 0; i < kExchanges; ++i) {
        daemon::SetFlagsRequest req;
        req.uid = 100;
        req.pid = 1;
        req.flags = meter::M_SEND;
        (void)daemon::send_msg(sys, *fd, req);
        auto reply = daemon::recv_msg(sys, *fd);
        benchmark::DoNotOptimize(reply.ok());
      }
      elapsed = sim_us(sys.world()) - t0;
      (void)sys.close(*fd);
    });
    world->run();
    total += elapsed;
  }
  state.counters["sim_us_per_rpc"] =
      total / static_cast<double>(state.iterations()) / kExchanges;
}

/// Whole-job setup latency: filter + newjob + N processes + setflags.
void BM_JobSetup(benchmark::State& state) {
  const int nprocs = static_cast<int>(state.range(0));
  double total = 0;
  for (auto _ : state) {
    auto world = make_world(4);
    control::spawn_meterdaemons(*world);
    control::MonitorSession session(*world, {.host = "m0", .uid = 100});
    world->run();
    (void)session.drain_output();
    const double t0 = sim_us(*world);
    (void)session.command("filter f1 m0");
    (void)session.command("newjob j");
    for (int i = 0; i < nprocs; ++i) {
      (void)session.command("addprocess j m" + std::to_string(1 + i % 3) +
                            " hello p" + std::to_string(i));
    }
    (void)session.command("setflags j all");
    total += sim_us(*world) - t0;
    (void)session.command("startjob j");
    (void)session.command("removejob j");
  }
  state.counters["sim_ms_setup"] =
      total / static_cast<double>(state.iterations()) / 1000.0;
  state.counters["sim_ms_per_proc"] =
      total / static_cast<double>(state.iterations()) / 1000.0 / nprocs;
}

BENCHMARK(BM_RpcTemporaryConnections)->Unit(benchmark::kMillisecond);
BENCHMARK(BM_RpcLongLivedConnection)->Unit(benchmark::kMillisecond);
BENCHMARK(BM_JobSetup)->Arg(1)->Arg(4)->Arg(16)->Unit(benchmark::kMillisecond);

}  // namespace
}  // namespace dpm::bench

BENCHMARK_MAIN();
