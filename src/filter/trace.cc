#include "filter/trace.h"

#include <charconv>

#include "meter/metermsgs.h"
#include "util/strings.h"

namespace dpm::filter {

namespace {

void append_escaped(std::string& out, std::string_view s) {
  // Bulk-append runs of clean characters; escapable bytes (rare — no
  // event name or socket name contains them today) render as the same
  // lowercase "%xx" that strprintf("%%%02x") produced.
  constexpr char kHex[] = "0123456789abcdef";
  std::size_t start = 0;
  for (std::size_t i = 0; i < s.size(); ++i) {
    const char ch = s[i];
    if (ch == ' ' || ch == '%' || ch == '\n' || ch == '=') {
      out.append(s.data() + start, i - start);
      const auto u = static_cast<unsigned char>(ch);
      out.push_back('%');
      out.push_back(kHex[u >> 4]);
      out.push_back(kHex[u & 0xf]);
      start = i + 1;
    }
  }
  out.append(s.data() + start, s.size() - start);
}

std::string escape(const std::string& s) {
  std::string out;
  out.reserve(s.size());
  append_escaped(out, s);
  return out;
}

std::string unescape(const std::string& s) {
  std::string out;
  out.reserve(s.size());
  for (std::size_t i = 0; i < s.size(); ++i) {
    if (s[i] == '%' && i + 2 < s.size()) {
      auto hi = util::parse_int_base(s.substr(i + 1, 2), 16);
      if (hi) {
        out.push_back(static_cast<char>(*hi));
        i += 2;
        continue;
      }
    }
    out.push_back(s[i]);
  }
  return out;
}

}  // namespace

std::string trace_line(const Record& rec, const std::set<std::string>& discard) {
  std::string out = "event=" + rec.event_name;
  for (const auto& [name, value] : rec.fields) {
    if (discard.count(name)) continue;
    out += ' ';
    out += name;
    out += '=';
    out += escape(field_value_text(value));
  }
  out += '\n';
  return out;
}

std::string trace_line(const Record& rec, const std::vector<bool>* discard_mask) {
  std::string out = "event=" + rec.event_name;
  for (std::size_t i = 0; i < rec.fields.size(); ++i) {
    if (discard_mask && i < discard_mask->size() && (*discard_mask)[i]) continue;
    const auto& [name, value] = rec.fields[i];
    out += ' ';
    out += name;
    out += '=';
    out += escape(field_value_text(value));
  }
  out += '\n';
  return out;
}

bool trace_line_view(const WirePlan& plan, const RecordView& v,
                     const std::vector<bool>* discard_mask,
                     const std::string_view* strings, std::string& out) {
  constexpr std::size_t kMaxFields = 32;
  FieldView fields[kMaxFields];
  if (!plan.extract(v, fields, kMaxFields, strings)) return false;
  const std::vector<std::string>& name_eq = plan.name_eq();
  out += "event=";
  out += plan.event_name();
  for (std::size_t i = 0; i < plan.field_count(); ++i) {
    if (discard_mask && i < discard_mask->size() && (*discard_mask)[i]) continue;
    out += name_eq[i];
    if (const auto* n = std::get_if<std::int64_t>(&fields[i])) {
      // to_chars renders the same digits as the owned path's "%lld".
      char buf[24];
      const auto res = std::to_chars(buf, buf + sizeof buf, *n);
      out.append(buf, res.ptr);
    } else {
      append_escaped(out, std::get<std::string_view>(fields[i]));
    }
  }
  out += '\n';
  return true;
}

std::optional<Record> parse_trace_line(const std::string& line) {
  const std::string trimmed{util::trim(line)};
  if (trimmed.empty() || trimmed[0] == '#') return std::nullopt;
  Record rec;
  for (const auto& tok : util::split(trimmed, " \t")) {
    auto eq = tok.find('=');
    if (eq == std::string::npos || eq == 0) return std::nullopt;
    const std::string name = tok.substr(0, eq);
    const std::string value = unescape(tok.substr(eq + 1));
    if (name == "event") {
      rec.event_name = value;
      continue;
    }
    if (auto n = util::parse_int(value)) {
      rec.fields.emplace_back(name, *n);
    } else {
      rec.fields.emplace_back(name, value);
    }
  }
  if (rec.event_name.empty()) return std::nullopt;
  if (auto t = rec.num("type")) rec.type = static_cast<std::uint32_t>(*t);
  return rec;
}

ParsedTrace parse_trace(const std::string& text) {
  ParsedTrace out;
  for (const auto& line : util::split_keep_empty(text, '\n')) {
    const std::string t{util::trim(line)};
    if (t.empty() || t[0] == '#') continue;
    auto rec = parse_trace_line(t);
    if (rec) {
      out.records.push_back(std::move(*rec));
    } else {
      ++out.malformed;
    }
  }
  return out;
}

std::string log_path_for(const std::string& filter_name) {
  return "/usr/tmp/" + filter_name + ".log";
}

}  // namespace dpm::filter
