// The simulation executive: owns simulated time, the event queue, and all
// tasks. One instance per simulated world.
//
// Scheduling discipline: the run loop drains the runnable task queue (FIFO,
// all at the current instant), then advances time to the next event. Events
// and tasks may schedule further events and wake further tasks.
#pragma once

#include <cstdint>
#include <deque>
#include <functional>
#include <memory>
#include <string>
#include <unordered_map>
#include <vector>

#include "obs/registry.h"
#include "sim/event_queue.h"
#include "sim/task.h"
#include "util/time.h"

namespace dpm::sim {

using TaskId = std::uint64_t;
constexpr TaskId kNoTask = 0;

class Executive {
 public:
  Executive();
  ~Executive();

  Executive(const Executive&) = delete;
  Executive& operator=(const Executive&) = delete;

  util::TimePoint now() const { return now_; }

  /// Schedules an event on the executive (runs outside any task).
  EventId schedule_at(util::TimePoint t, std::function<void()> fn);
  EventId schedule_after(util::Duration d, std::function<void()> fn);
  /// Cancels a pending scheduled event: it neither runs nor holds the
  /// queue open (see EventQueue::cancel). Only valid while the event is
  /// still pending.
  void cancel_event(EventId id);

  /// Creates a task; it becomes runnable immediately.
  TaskId spawn(std::string name, Task::Body body);

  /// Wakes a parked task (idempotent; a pending wake is remembered if the
  /// task is currently running or already runnable). No-op for finished ids.
  void make_runnable(TaskId id);

  /// Called from inside a task: suspends until made runnable.
  void park_current();

  /// Called from inside a task: suspends until the given simulated time.
  void sleep_until(util::TimePoint t);
  void sleep_for(util::Duration d);

  /// Aborts a task: the next time it would run it unwinds via TaskAborted.
  /// If it is parked it is woken so the unwind happens promptly.
  void abort_task(TaskId id);

  /// Id of the currently running task (kNoTask when in an event handler).
  TaskId current_task() const { return current_; }

  /// Runs until the event queue is empty and no task is runnable.
  void run();

  /// Runs until simulated time would exceed `t` (events at exactly `t` run).
  void run_until(util::TimePoint t);

  /// True while `run()` is live-locked guard: number of task switches done.
  std::uint64_t switches() const { return switches_; }

  bool task_finished(TaskId id) const;
  std::size_t live_tasks() const;

  /// Points the executive at a metrics registry; also installs this
  /// executive's clock as the registry's time source. The executive then
  /// tracks runnable-queue depth (sim.runnable), dispatched events,
  /// task switches, and events handled per simulated instant.
  void set_obs(obs::Registry* reg);

 private:
  struct TaskState {
    std::unique_ptr<Task> task;
    bool runnable = false;       // in runnable_ queue
    bool wake_pending = false;   // wake arrived while running
  };

  void run_one_step(bool& progressed);
  void resume_task(TaskId id);
  TaskState* find(TaskId id);

  util::TimePoint now_{};
  EventQueue events_;
  std::deque<TaskId> runnable_;
  std::unordered_map<TaskId, TaskState> tasks_;
  TaskId next_id_ = 1;
  TaskId current_ = kNoTask;
  std::uint64_t switches_ = 0;

  // Observability handles (null until set_obs; see obs/registry.h).
  obs::Registry* obs_ = nullptr;
  obs::Gauge* runnable_gauge_ = nullptr;
  obs::Counter* events_counter_ = nullptr;
  obs::Counter* switches_counter_ = nullptr;
  obs::Histogram* events_per_tick_ = nullptr;
  std::uint64_t events_this_tick_ = 0;
};

}  // namespace dpm::sim
