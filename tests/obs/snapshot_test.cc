// Snapshot pipeline: JSONL serialization, the parser/validator used by
// dpmstat and the ctest schema smoke, the JSON-array embedding for bench
// result files, and the structural diff.
#include "obs/snapshot.h"

#include <gtest/gtest.h>

#include "obs/registry.h"
#include "obs/span.h"

namespace dpm::obs {
namespace {

Registry& populated(Registry& reg) {
  reg.counter("kernel.meter_events").add(128);
  reg.counter("net.packets_sent").add(9);
  Gauge& g = reg.gauge("kernel.meter_pending_bytes");
  g.add(1040);
  g.sub(1040);
  Histogram& h = reg.histogram("net.delivery_us");
  h.record(54);
  for (int i = 0; i < 4; ++i) h.record(600);
  for (int i = 0; i < 4; ++i) h.record(1500);
  { ObsSpan span(reg, "filter.select_round"); }
  return reg;
}

TEST(SnapshotTest, WriteParseRoundTrip) {
  Registry reg;
  const std::string text = populated(reg).snapshot_jsonl();

  std::string err;
  auto snap = parse_snapshot(text, &err);
  ASSERT_TRUE(snap.has_value()) << err;
  EXPECT_EQ(snap->seq, 1u);
  EXPECT_EQ(snap->t_us, 0);

  EXPECT_EQ(snap->counters.at("kernel.meter_events"), 128u);
  EXPECT_EQ(snap->counters.at("net.packets_sent"), 9u);

  const GaugeSample& g = snap->gauges.at("kernel.meter_pending_bytes");
  EXPECT_EQ(g.value, 0);
  EXPECT_EQ(g.high_water, 1040);

  const HistogramSample& h = snap->histograms.at("net.delivery_us");
  EXPECT_EQ(h.count, 9u);
  EXPECT_EQ(h.sum, 54 + 4 * 600 + 4 * 1500);
  EXPECT_EQ(h.min, 54);
  EXPECT_EQ(h.max, 1500);
  EXPECT_EQ(h.p50, 1023);  // bound of bucket 10 (600s), under the max
  // Sparse buckets: 54 -> bucket 6, 600 -> bucket 10, 1500 -> bucket 11.
  ASSERT_EQ(h.buckets.size(), 3u);
  EXPECT_EQ(h.buckets[0], (std::pair<int, std::uint64_t>{6, 1}));
  EXPECT_EQ(h.buckets[1], (std::pair<int, std::uint64_t>{10, 4}));
  EXPECT_EQ(h.buckets[2], (std::pair<int, std::uint64_t>{11, 4}));

  ASSERT_EQ(snap->spans.size(), 2u);
  EXPECT_EQ(snap->spans[0].name, "filter.select_round");
  EXPECT_TRUE(snap->spans[0].begin);
  EXPECT_FALSE(snap->spans[1].begin);
}

TEST(SnapshotTest, SequenceNumbersIncrement) {
  Registry reg;
  populated(reg);
  std::string stream = reg.snapshot_jsonl();
  reg.counter("kernel.meter_events").add(1);
  reg.snapshot_jsonl(stream);  // appends the second snapshot

  auto snap = parse_snapshot(stream);
  ASSERT_TRUE(snap.has_value());
  // Last snapshot wins on a multi-snapshot stream.
  EXPECT_EQ(snap->seq, 2u);
  EXPECT_EQ(snap->counters.at("kernel.meter_events"), 129u);
}

TEST(SnapshotTest, ValidateAcceptsWellFormedSnapshots) {
  Registry reg;
  EXPECT_EQ(validate_snapshot(populated(reg).snapshot_jsonl()), "");
  EXPECT_NE(validate_snapshot(""), "");  // a snapshot needs its header
}

TEST(SnapshotTest, ValidateRejectsMalformedText) {
  EXPECT_NE(validate_snapshot("not json at all"), "");
  // A counter line with no header is parseable JSON but not a snapshot.
  EXPECT_NE(validate_snapshot(
                R"({"kind":"counter","key":"a.b","value":1})"),
            "");
  // Histogram whose buckets do not sum to its count.
  Registry reg;
  reg.histogram("net.delivery_us").record(5);
  std::string text = reg.snapshot_jsonl();
  const auto pos = text.find("\"count\":1");
  ASSERT_NE(pos, std::string::npos);
  text.replace(pos, 9, "\"count\":2");
  EXPECT_NE(validate_snapshot(text), "");
}

TEST(SnapshotTest, SubsystemsAreDistinctKeyPrefixes) {
  Registry reg;
  reg.counter("kernel.meter_events");
  reg.counter("kernel.meter_flushes");
  reg.gauge("net.in_flight");
  reg.histogram("daemon.rpc_create_us");
  auto snap = parse_snapshot(reg.snapshot_jsonl());
  ASSERT_TRUE(snap.has_value());
  EXPECT_EQ(snap->subsystems(),
            (std::vector<std::string>{"daemon", "kernel", "net"}));
}

TEST(SnapshotTest, JsonArrayEmbedding) {
  Registry reg;
  const std::string arr = jsonl_to_json_array(populated(reg).snapshot_jsonl());
  EXPECT_EQ(arr.front(), '[');
  EXPECT_EQ(arr.back(), ']');
  // One element per JSONL line, comma-separated.
  std::size_t objects = 0;
  for (std::size_t pos = 0; (pos = arr.find("{\"kind\":", pos)) !=
                            std::string::npos;
       ++pos) {
    ++objects;
  }
  EXPECT_EQ(objects, 1 /*header*/ + reg.metric_count() + reg.span_ring().size());
  EXPECT_EQ(jsonl_to_json_array(""), "[]");
}

TEST(SnapshotTest, DiffReportsDeltasAndNewKeys) {
  Registry reg;
  populated(reg);
  auto a = parse_snapshot(reg.snapshot_jsonl());
  ASSERT_TRUE(a.has_value());

  reg.counter("kernel.meter_events").add(72);
  reg.counter("control.commands").add(3);  // new key
  reg.histogram("net.delivery_us").record(40);
  auto b = parse_snapshot(reg.snapshot_jsonl());
  ASSERT_TRUE(b.has_value());

  const std::string d = diff_snapshots(*a, *b);
  EXPECT_NE(d.find("kernel.meter_events"), std::string::npos);
  EXPECT_NE(d.find("+72"), std::string::npos);
  EXPECT_NE(d.find("control.commands"), std::string::npos);
  EXPECT_NE(d.find("net.delivery_us"), std::string::npos);
  // Unchanged instruments stay out of the diff.
  EXPECT_EQ(d.find("net.packets_sent"), std::string::npos);
}

TEST(SnapshotTest, DiffHandlesOneSidedInstruments) {
  // Two snapshots from *different* registries (a restarted daemon, a
  // different filter): every kind of instrument may exist on only one
  // side, and the diff must say so instead of mispairing or crashing.
  Registry ra;
  ra.counter("kernel.meter_events").add(10);
  ra.gauge("net.in_flight").add(3);
  ra.histogram("net.delivery_us").record(100);
  auto a = parse_snapshot(ra.snapshot_jsonl());
  ASSERT_TRUE(a.has_value());

  Registry rb;
  rb.counter("filter.records_matched").add(4);
  rb.gauge("live.parked").add(2);
  rb.histogram("live.pair_latency_us").record(250);
  auto b = parse_snapshot(rb.snapshot_jsonl());
  ASSERT_TRUE(b.has_value());

  const std::string d = diff_snapshots(*a, *b);
  // Instruments only in the newer snapshot are flagged as new...
  for (const char* added : {"filter.records_matched", "live.parked",
                            "live.pair_latency_us"}) {
    const auto pos = d.find(added);
    ASSERT_NE(pos, std::string::npos) << added;
    EXPECT_NE(d.find("(new)", pos), std::string::npos) << added;
  }
  // ...and instruments only in the older one as gone.
  for (const char* removed : {"kernel.meter_events", "net.in_flight",
                              "net.delivery_us"}) {
    const auto pos = d.find(removed);
    ASSERT_NE(pos, std::string::npos) << removed;
    EXPECT_NE(d.find("(gone)", pos), std::string::npos) << removed;
  }
}

TEST(SnapshotTest, DiffAgainstEmptySnapshots) {
  Registry reg;
  populated(reg);
  auto full = parse_snapshot(reg.snapshot_jsonl());
  ASSERT_TRUE(full.has_value());
  Registry empty_reg;
  auto empty = parse_snapshot(empty_reg.snapshot_jsonl());
  ASSERT_TRUE(empty.has_value());

  // empty -> full: everything is new, nothing is gone.
  const std::string up = diff_snapshots(*empty, *full);
  EXPECT_NE(up.find("(new)"), std::string::npos);
  EXPECT_EQ(up.find("(gone)"), std::string::npos);
  // full -> empty: the reverse.
  const std::string down = diff_snapshots(*full, *empty);
  EXPECT_NE(down.find("(gone)"), std::string::npos);
  EXPECT_EQ(down.find("(new)"), std::string::npos);
}

}  // namespace
}  // namespace dpm::obs
