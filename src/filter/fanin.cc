#include "filter/fanin.h"

#include <algorithm>
#include <map>

#include "filter/filter_program.h"
#include "kernel/syscalls.h"
#include "kernel/world.h"
#include "meter/metermsgs.h"
#include "obs/registry.h"
#include "util/strings.h"

namespace dpm::filter {
namespace {

/// Staged forward batches flush at this size or at end of select round,
/// whichever comes first — the same order of magnitude as a meter flush,
/// so upward frames amortize the per-send fabric cost without sitting on
/// records across quiet rounds.
constexpr std::size_t kBatchHighWater = 8 * 1024;

/// A node whose parent stays unreachable across this many failed connect
/// attempts degrades permanently: staged records keep flowing into the
/// dead edge, where the kernel books them fanin.lost_records.
constexpr int kMaxReconnects = 8;

/// The node's single edge toward its parent. The invariant that makes the
/// tier-1 ledger exact: after establish() succeeds, the link always holds
/// an open fd — a dead socket is *kept* and forwarded into (the kernel
/// accounts those records as lost) until a replacement connects, so no
/// accepted record ever bypasses meter_forward's accounting.
class UpLink {
 public:
  UpLink(std::string host, net::Port port, obs::Counter& reconnects)
      : host_(std::move(host)), port_(port), reconnects_(&reconnects) {}

  /// Initial connect, with retries — the tree is built top-down (parents
  /// listen before children start), so this converges in a round or two.
  bool establish(kernel::Sys& sys) {
    for (int attempt = 0; attempt < 50; ++attempt) {
      if (try_connect(sys)) return true;
      sys.sleep(util::msec(10));
    }
    return false;
  }

  /// Ships the staged batch up the link and resets the stage. On a dead
  /// edge the records are already booked fanin.lost_records by the kernel
  /// (never re-sent); the next flush attempts one bounded reconnect.
  void forward(kernel::Sys& sys, util::Bytes& batch, std::uint32_t& records) {
    if (records == 0) return;
    if (want_reconnect_ && failures_ <= kMaxReconnects && try_connect(sys)) {
      reconnects_->add(1);
    }
    if (fd_ >= 0 && !sys.meter_forward(fd_, batch, records)) {
      want_reconnect_ = true;
    }
    batch.clear();
    records = 0;
  }

 private:
  bool try_connect(kernel::Sys& sys) {
    auto addr = sys.resolve(host_, port_);
    if (!addr) {
      ++failures_;
      return false;
    }
    auto s = sys.socket(kernel::SockDomain::internet, kernel::SockType::stream);
    if (!s) {
      ++failures_;
      return false;
    }
    if (!sys.connect(*s, *addr, util::msec(250))) {
      (void)sys.close(*s);
      ++failures_;
      return false;
    }
    (void)sys.metertap(*s);
    if (fd_ >= 0) (void)sys.close(fd_);
    fd_ = *s;
    want_reconnect_ = false;
    return true;
  }

  std::string host_;
  net::Port port_;
  kernel::Fd fd_ = -1;
  int failures_ = 0;
  bool want_reconnect_ = false;
  obs::Counter* reconnects_;
};

/// Re-frames one inbound tier-1 byte stream into whole records. Children
/// forward whole frames, but the stream interleaves at recv boundaries, so
/// each connection carries its own partial tail between rounds.
class FrameSplitter {
 public:
  explicit FrameSplitter(obs::Counter& desyncs) : desyncs_(&desyncs) {}

  /// Moves every complete record in carry+data to `out`; returns how many.
  /// A bad size word desynchronizes the connection: the remainder is
  /// dropped (the records were already counted consumed at recv — consumed
  /// is terminal per hop, so the ledger stays exact) and desyncs bumped.
  std::size_t feed(const util::Bytes& data, util::Bytes& out) {
    buf_.insert(buf_.end(), data.begin(), data.end());
    const std::uint8_t* base = buf_.data();
    const std::size_t len = buf_.size();
    std::size_t pos = 0;
    std::size_t n = 0;
    while (len - pos >= 4) {
      const std::uint32_t size =
          static_cast<std::uint32_t>(base[pos]) |
          static_cast<std::uint32_t>(base[pos + 1]) << 8 |
          static_cast<std::uint32_t>(base[pos + 2]) << 16 |
          static_cast<std::uint32_t>(base[pos + 3]) << 24;
      if (size < meter::kHeaderSize || size > (1u << 20)) {
        desyncs_->add(1);
        buf_.clear();
        return n;
      }
      if (len - pos < size) break;
      out.insert(out.end(), base + pos, base + pos + size);
      pos += size;
      ++n;
    }
    buf_.erase(buf_.begin(), buf_.begin() + static_cast<std::ptrdiff_t>(pos));
    return n;
  }

  bool mid_record() const { return !buf_.empty(); }

 private:
  util::Bytes buf_;
  obs::Counter* desyncs_;
};

std::string read_whole_file(kernel::Sys& sys, const std::string& path) {
  auto fd = sys.open(path, kernel::Sys::OpenMode::read);
  if (!fd) return {};
  std::string text;
  for (;;) {
    auto chunk = sys.read(*fd, 4096);
    if (!chunk || chunk->empty()) break;
    text += util::to_string(*chunk);
  }
  (void)sys.close(*fd);
  return text;
}

}  // namespace

kernel::ProcessMain make_localfilter_main(
    const std::vector<std::string>& argv) {
  return [argv](kernel::Sys& sys) {
    if (argv.size() < 6) {
      (void)sys.print(
          "localfilter: usage: localfilter descriptions templates port "
          "parent-host parent-port\n");
      sys.exit(1);
    }
    const auto port = util::parse_int(argv[3]);
    const auto pport = util::parse_int(argv[5]);
    if (!port || *port <= 0 || *port > 65535 || !pport || *pport <= 0 ||
        *pport > 65535) {
      (void)sys.print("localfilter: bad port\n");
      sys.exit(1);
    }

    std::string err;
    auto desc = Descriptions::parse(read_whole_file(sys, argv[1]), &err);
    if (!desc) {
      (void)sys.print("localfilter: bad descriptions: " + err + "\n");
      sys.exit(1);
    }
    auto templ = Templates::parse(read_whole_file(sys, argv[2]), &err);
    if (!templ) {
      (void)sys.print("localfilter: bad templates: " + err + "\n");
      sys.exit(1);
    }

    // Accounts under "localfilter.*" so the edge stage and the session
    // filter stay separable in the world's one registry. No live sink:
    // the root is the session's single live tap, and tapping here would
    // force a decode of every accepted record on every machine.
    obs::Registry& reg = sys.world().obs();
    FilterEngine engine(std::move(*desc), std::move(*templ), EvalPath::view,
                        &reg, MatchEngine::bytecode, "localfilter");
    obs::Counter& batches_out = reg.counter("localfilter.batches_out");
    obs::Counter& reconnects = reg.counter("localfilter.reconnects");

    auto lsock =
        sys.socket(kernel::SockDomain::internet, kernel::SockType::stream);
    if (!lsock) sys.exit(1);
    if (!sys.bind_port(*lsock, static_cast<net::Port>(*port))) {
      (void)sys.print("localfilter: cannot bind meter port\n");
      sys.exit(1);
    }
    if (!sys.listen(*lsock, 32)) sys.exit(1);

    UpLink up(argv[4], static_cast<net::Port>(*pport), reconnects);
    if (!up.establish(sys)) {
      (void)sys.print("localfilter: parent unreachable\n");
      sys.exit(1);
    }

    util::Bytes batch;
    std::uint32_t staged = 0;
    const FilterEngine::OnAcceptRaw stage = [&](const std::uint8_t* raw,
                                                std::size_t size) {
      batch.insert(batch.end(), raw, raw + size);
      ++staged;
    };

    std::vector<kernel::Fd> conns;
    for (;;) {
      std::vector<kernel::Fd> fds = conns;
      fds.push_back(*lsock);
      auto sel = sys.select(fds, /*child_events=*/false, std::nullopt);
      if (!sel) break;
      for (kernel::Fd fd : sel->readable) {
        if (fd == *lsock) {
          auto conn = sys.accept(*lsock);
          if (conn) conns.push_back(*conn);
          continue;
        }
        auto data = sys.recv(fd, 8192);
        if (!data || data->empty()) {
          engine.end_connection(static_cast<std::uint64_t>(fd));
          (void)sys.close(fd);
          conns.erase(std::remove(conns.begin(), conns.end(), fd),
                      conns.end());
          continue;
        }
        engine.feed_forward(static_cast<std::uint64_t>(fd), *data, stage);
        if (batch.size() >= kBatchHighWater) {
          batches_out.add(1);
          up.forward(sys, batch, staged);
        }
      }
      if (staged > 0) {
        batches_out.add(1);
        up.forward(sys, batch, staged);
      }
    }

    (void)sys.write(2, filter_summary_line("localfilter", engine.stats()));
    sys.exit(0);
  };
}

kernel::ProcessMain make_aggregator_main(
    const std::vector<std::string>& argv) {
  return [argv](kernel::Sys& sys) {
    if (argv.size() < 4) {
      (void)sys.print(
          "aggregator: usage: aggregator port parent-host parent-port\n");
      sys.exit(1);
    }
    const auto port = util::parse_int(argv[1]);
    const auto pport = util::parse_int(argv[3]);
    if (!port || *port <= 0 || *port > 65535 || !pport || *pport <= 0 ||
        *pport > 65535) {
      (void)sys.print("aggregator: bad port\n");
      sys.exit(1);
    }

    obs::Registry& reg = sys.world().obs();
    obs::Counter& records_in = reg.counter("aggregator.records_in");
    obs::Counter& batches_out = reg.counter("aggregator.batches_out");
    obs::Counter& reconnects = reg.counter("aggregator.reconnects");
    obs::Counter& desyncs = reg.counter("aggregator.desyncs");
    obs::Counter& truncated = reg.counter("aggregator.truncated");

    auto lsock =
        sys.socket(kernel::SockDomain::internet, kernel::SockType::stream);
    if (!lsock) sys.exit(1);
    if (!sys.bind_port(*lsock, static_cast<net::Port>(*port))) {
      (void)sys.print("aggregator: cannot bind port\n");
      sys.exit(1);
    }
    if (!sys.listen(*lsock, 32)) sys.exit(1);

    UpLink up(argv[2], static_cast<net::Port>(*pport), reconnects);
    if (!up.establish(sys)) {
      (void)sys.print("aggregator: parent unreachable\n");
      sys.exit(1);
    }

    util::Bytes batch;
    std::uint32_t staged = 0;
    std::vector<kernel::Fd> conns;
    std::map<kernel::Fd, FrameSplitter> splitters;
    for (;;) {
      std::vector<kernel::Fd> fds = conns;
      fds.push_back(*lsock);
      auto sel = sys.select(fds, /*child_events=*/false, std::nullopt);
      if (!sel) break;
      for (kernel::Fd fd : sel->readable) {
        if (fd == *lsock) {
          auto conn = sys.accept(*lsock);
          if (conn) {
            conns.push_back(*conn);
            splitters.emplace(*conn, FrameSplitter(desyncs));
          }
          continue;
        }
        auto it = splitters.find(fd);
        if (it == splitters.end()) continue;
        auto data = sys.recv(fd, 8192);
        if (!data || data->empty()) {
          // A child went away; its mid-record tail (if any) was consumed
          // at recv and is dropped here — counted, not silent.
          if (it->second.mid_record()) truncated.add(1);
          splitters.erase(it);
          (void)sys.close(fd);
          conns.erase(std::remove(conns.begin(), conns.end(), fd),
                      conns.end());
          continue;
        }
        const std::size_t n = it->second.feed(*data, batch);
        staged += static_cast<std::uint32_t>(n);
        records_in.add(n);
        if (batch.size() >= kBatchHighWater) {
          batches_out.add(1);
          up.forward(sys, batch, staged);
        }
      }
      if (staged > 0) {
        batches_out.add(1);
        up.forward(sys, batch, staged);
      }
    }
    sys.exit(0);
  };
}

void register_fanin_programs(kernel::ExecRegistry& registry) {
  registry.register_program(kLocalFilterProgram, make_localfilter_main);
  registry.register_program(kAggregatorProgram, make_aggregator_main);
}

}  // namespace dpm::filter
