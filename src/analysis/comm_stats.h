// Communication statistics (§3.3: "These analyses include communications
// statistics, measurement of parallelism, and structural studies.").
#pragma once

#include <cstdint>
#include <map>

#include "analysis/structure.h"
#include "analysis/trace_reader.h"

namespace dpm::analysis {

struct ProcessStats {
  std::uint64_t sends = 0;
  std::uint64_t send_bytes = 0;
  std::uint64_t recvs = 0;
  std::uint64_t recv_bytes = 0;
  std::uint64_t recv_calls = 0;
  std::uint64_t sockets_created = 0;
  std::uint64_t sockets_closed = 0;
  std::uint64_t forks = 0;
  std::uint64_t accepts = 0;
  std::uint64_t connects = 0;
  bool terminated = false;
  std::int64_t first_cpu_time = 0;  // local-clock window of activity
  std::int64_t last_cpu_time = 0;
  std::int64_t final_proc_time = 0;  // CPU consumed (10ms grain)
};

struct CommStats {
  std::map<ProcKey, ProcessStats> per_process;
  CommGraph graph;
  std::uint64_t total_events = 0;
  std::uint64_t total_messages = 0;  // send events
  std::uint64_t total_bytes = 0;     // bytes in send events
};

CommStats communication_statistics(const Trace& trace);

}  // namespace dpm::analysis
