// Replays the paper's Appendix B session as a controller command script,
// printing the transcript. Figures 4.3-4.6 walk through exactly this
// sequence: a filter on blue, a job "foo" with process A on red and
// process B on green, metering flags "send receive fork accept connect",
// start, termination reports, removal, and log retrieval.
//
// Process A is a stream server and B its client — the two communicating
// processes of Fig 4.6.
#include <iostream>

#include "apps/apps.h"
#include "control/session.h"
#include "filter/trace.h"
#include "kernel/world.h"

int main() {
  using namespace dpm;

  kernel::World world;
  const kernel::MachineId yellow = world.add_machine("yellow");
  world.add_machine("red");
  world.add_machine("green");
  world.add_machine("blue");

  control::install_monitor(world);
  apps::install_everywhere(world);
  control::spawn_meterdaemons(world);

  // Executable files named A and B, as in the paper's script.
  for (kernel::MachineId m : world.machines()) {
    control::install_app(world, m, "A", "pingpong_server");
    control::install_app(world, m, "B", "pingpong_client");
  }

  control::MonitorSession session(world, {.host = "yellow", .uid = 100});
  world.run();

  // The Appendix B script, stored on the user's machine and sourced —
  // exercising the controller's own scripting facility (§4.3).
  world.machine(yellow).fs.put_text("appendix_b",
                                    "filter f1 blue\n"
                                    "newjob foo\n"
                                    "addprocess foo red A 4242 3\n"
                                    "addprocess foo green B red 4242 3 64\n"
                                    "setflags foo send receive fork accept connect\n"
                                    "startjob foo\n",
                                    100);
  std::cout << session.drain_output();
  std::cout << session.command("source appendix_b");

  // The DONE reports arrive asynchronously; give the world a beat.
  world.run();
  std::cout << session.drain_output();

  std::cout << session.command("rmjob foo");
  std::cout << session.command("getlog f1 trace");
  session.send_line("bye");
  world.run();
  std::cout << session.drain_output();

  auto text = world.machine(yellow).fs.read_text("trace");
  if (text) {
    std::cout << "\n--- retrieved trace (" << filter::parse_trace(*text).records.size()
              << " records) ---\n"
              << *text;
  }
  return 0;
}
