#include "analysis/live/pairing.h"

#include <algorithm>

namespace dpm::analysis::live {

void PairingCore::push_side(Side& s, std::size_t index) {
  if (s.any_popped && index < s.max_popped) disorder_ = true;
  auto it = s.q.end();
  while (it != s.q.begin() && *(it - 1) > index) --it;
  s.q.insert(it, index);
}

void PairingCore::try_pair(Chan& c) {
  while (!c.sends.q.empty() && !c.recvs.q.empty()) {
    const std::size_t s = c.sends.q.front();
    const std::size_t r = c.recvs.q.front();
    c.sends.q.pop_front();
    c.recvs.q.pop_front();
    c.sends.max_popped = std::max(c.sends.max_popped, s);
    c.recvs.max_popped = std::max(c.recvs.max_popped, r);
    c.sends.any_popped = c.recvs.any_popped = true;
    pending_.push_back(Pair{s, r});
  }
}

void PairingCore::learn_name(const std::string& name, Endpoint ep) {
  if (name.empty()) return;
  auto it = names_.find(name);
  if (it != names_.end() && it->second.sock != 0) return;  // first winner keeps
  names_[name] = ep;
  if (ep.sock == 0) return;

  // The name just became resolvable: route everything parked on it, in
  // index order (the vector preserves arrival = index order per name).
  auto pit = parked_by_name_.find(name);
  if (pit == parked_by_name_.end()) return;
  for (const ParkedDgram& w : pit->second) {
    --parked_;
    if (w.is_send) {
      Chan& c = dgram_[{Endpoint{w.proc, w.sock}, ep.proc}];
      push_side(c.sends, w.index);
      try_pair(c);
    } else {
      Chan& c = dgram_[{ep, w.proc}];
      push_side(c.recvs, w.index);
      try_pair(c);
    }
  }
  parked_by_name_.erase(pit);
}

void PairingCore::set_peer(Endpoint ep, Endpoint other) {
  auto [it, fresh] = peers_.try_emplace({ep.proc, ep.sock}, other);
  if (!fresh) {
    // An endpoint re-pairing (socket-id reuse) would let the batch
    // algorithm route earlier receives with this *later* mapping.
    if (!(it->second == other)) disorder_ = true;
    it->second = other;
  }
  // Stream receives at `ep` route to the channel keyed by the remote.
  auto pit = parked_stream_recvs_.find({ep.proc, ep.sock});
  if (pit == parked_stream_recvs_.end()) return;
  Chan& c = stream_[{other.proc, other.sock}];
  for (const ParkedStreamRecv& w : pit->second) {
    --parked_;
    push_side(c.recvs, w.index);
  }
  parked_stream_recvs_.erase(pit);
  try_pair(c);
}

void PairingCore::join_connections(
    const std::pair<std::string, std::string>& key) {
  auto cit = connects_.find(key);
  auto ait = accepts_.find(key);
  if (cit == connects_.end() || ait == accepts_.end()) return;
  auto& cq = cit->second;
  auto& aq = ait->second;
  while (!cq.empty() && !aq.empty()) {
    const Endpoint c = cq.front();
    const Endpoint a = aq.front();
    cq.pop_front();
    aq.pop_front();
    ++matched_;
    set_peer(c, a);
    set_peer(a, c);
  }
}

void PairingCore::observe(const Event& e, std::size_t index) {
  switch (e.type) {
    case meter::EventType::connect: {
      const Endpoint ep{e.proc(), e.sock};
      connects_[{e.sock_name, e.peer_name}].push_back(ep);
      learn_name(e.sock_name, ep);
      join_connections({e.sock_name, e.peer_name});
      break;
    }
    case meter::EventType::accept: {
      accepts_[{e.peer_name, e.sock_name}].push_back(
          Endpoint{e.proc(), e.new_sock});
      learn_name(e.sock_name, Endpoint{e.proc(), e.sock});
      join_connections({e.peer_name, e.sock_name});
      break;
    }
    case meter::EventType::send: {
      if (e.dest_name.empty()) {
        Chan& c = stream_[{e.proc(), e.sock}];
        push_side(c.sends, index);
        try_pair(c);
      } else if (auto it = names_.find(e.dest_name);
                 it != names_.end() && it->second.sock != 0) {
        Chan& c = dgram_[{Endpoint{e.proc(), e.sock}, it->second.proc}];
        push_side(c.sends, index);
        try_pair(c);
      } else {
        parked_by_name_[e.dest_name].push_back(
            ParkedDgram{index, e.proc(), e.sock, /*is_send=*/true, progress_});
        ++parked_;
      }
      break;
    }
    case meter::EventType::recv: {
      if (e.source_name.empty()) {
        if (auto it = peers_.find({e.proc(), e.sock}); it != peers_.end()) {
          Chan& c = stream_[{it->second.proc, it->second.sock}];
          push_side(c.recvs, index);
          try_pair(c);
        } else {
          parked_stream_recvs_[{e.proc(), e.sock}].push_back(
              ParkedStreamRecv{index, progress_});
          ++parked_;
        }
      } else if (auto it = names_.find(e.source_name);
                 it != names_.end() && it->second.sock != 0) {
        Chan& c = dgram_[{it->second, e.proc()}];
        push_side(c.recvs, index);
        try_pair(c);
      } else {
        parked_by_name_[e.source_name].push_back(
            ParkedDgram{index, e.proc(), e.sock, /*is_send=*/false, progress_});
        ++parked_;
      }
      break;
    }
    default:
      break;  // other event types carry no pairing evidence
  }
}

std::vector<PairingCore::Pair> PairingCore::take_pairs() {
  std::vector<Pair> out;
  out.swap(pending_);
  return out;
}

void PairingCore::advance_progress(std::uint64_t lamport) {
  if (lamport <= progress_) return;
  progress_ = lamport;
  if (park_ttl_ != 0 && parked_ != 0) sweep();
}

void PairingCore::sweep() {
  if (progress_ <= park_ttl_) return;
  const std::uint64_t cutoff = progress_ - park_ttl_;  // expel stamp < cutoff

  for (auto it = parked_stream_recvs_.begin();
       it != parked_stream_recvs_.end();) {
    auto& v = it->second;
    const std::string channel = "stream:" + proc_key_text(it->first.first) +
                                "#" + std::to_string(it->first.second);
    auto keep = std::remove_if(
        v.begin(), v.end(), [&](const ParkedStreamRecv& w) {
          if (w.stamp >= cutoff) return false;
          --parked_;
          ++gaps_total_;
          gaps_.push_back(Gap{w.index, channel, /*is_send=*/false});
          return true;
        });
    v.erase(keep, v.end());
    it = v.empty() ? parked_stream_recvs_.erase(it) : std::next(it);
  }

  for (auto it = parked_by_name_.begin(); it != parked_by_name_.end();) {
    auto& v = it->second;
    const std::string channel = "name:" + it->first;
    auto keep = std::remove_if(v.begin(), v.end(), [&](const ParkedDgram& w) {
      if (w.stamp >= cutoff) return false;
      --parked_;
      ++gaps_total_;
      gaps_.push_back(Gap{w.index, channel, w.is_send});
      return true;
    });
    v.erase(keep, v.end());
    it = v.empty() ? parked_by_name_.erase(it) : std::next(it);
  }
}

std::vector<PairingCore::Gap> PairingCore::take_gaps() {
  std::vector<Gap> out;
  out.swap(gaps_);
  return out;
}

}  // namespace dpm::analysis::live
