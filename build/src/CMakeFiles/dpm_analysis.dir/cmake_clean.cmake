file(REMOVE_RECURSE
  "CMakeFiles/dpm_analysis.dir/analysis/comm_stats.cc.o"
  "CMakeFiles/dpm_analysis.dir/analysis/comm_stats.cc.o.d"
  "CMakeFiles/dpm_analysis.dir/analysis/diagnose.cc.o"
  "CMakeFiles/dpm_analysis.dir/analysis/diagnose.cc.o.d"
  "CMakeFiles/dpm_analysis.dir/analysis/ordering.cc.o"
  "CMakeFiles/dpm_analysis.dir/analysis/ordering.cc.o.d"
  "CMakeFiles/dpm_analysis.dir/analysis/parallelism.cc.o"
  "CMakeFiles/dpm_analysis.dir/analysis/parallelism.cc.o.d"
  "CMakeFiles/dpm_analysis.dir/analysis/report.cc.o"
  "CMakeFiles/dpm_analysis.dir/analysis/report.cc.o.d"
  "CMakeFiles/dpm_analysis.dir/analysis/structure.cc.o"
  "CMakeFiles/dpm_analysis.dir/analysis/structure.cc.o.d"
  "CMakeFiles/dpm_analysis.dir/analysis/timeline.cc.o"
  "CMakeFiles/dpm_analysis.dir/analysis/timeline.cc.o.d"
  "CMakeFiles/dpm_analysis.dir/analysis/trace_reader.cc.o"
  "CMakeFiles/dpm_analysis.dir/analysis/trace_reader.cc.o.d"
  "libdpm_analysis.a"
  "libdpm_analysis.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dpm_analysis.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
