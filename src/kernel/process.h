// Process-table entries.
//
// §3.2: "For the purpose of metering, three fields have been added to the
// process structures in the process table": the meter socket, the meter
// flag bit mask, and the pending meter messages. Those three fields are
// reproduced verbatim here (meter_sock / meter_flags / meter_pending),
// alongside the usual identity, descriptor-table, accounting and
// signal-ish state a 4.2BSD proc entry carries.
#pragma once

#include <deque>
#include <string>
#include <vector>

#include "kernel/descriptor.h"
#include "kernel/types.h"
#include "kernel/wait.h"
#include "meter/meterflags.h"
#include "sim/executive.h"
#include "util/bytes.h"
#include "util/time.h"

namespace dpm::kernel {

class Machine;
class Socket;

enum class ProcStatus { embryo, alive, dead };

/// What a child did; delivered to the parent like SIGCHLD + wait status.
/// `meter_lost` is the degradation signal: the child's meter connection
/// died and its events are now accounted drops (the daemon forwards it to
/// the controller as a state note).
enum class ChildEvent { stopped, continued, exited, killed, meter_lost };

struct ChildChange {
  Pid pid = 0;
  ChildEvent event = ChildEvent::exited;
  int status = 0;  // exit status for `exited`
};

const char* child_event_name(ChildEvent e);

class Process {
 public:
  Process(Pid pid, MachineId machine, Uid uid, std::string name,
          std::size_t max_descriptors)
      : pid(pid), machine(machine), uid(uid), euid(uid),
        name(std::move(name)), fds(max_descriptors) {}

  // ---- identity ----
  Pid pid;
  MachineId machine;
  Uid uid;
  /// Effective uid used for permission checks; root processes (the
  /// meterdaemon) impersonate the requesting user with it (§3.5.5).
  Uid euid = uid;
  std::string name;        // program name, for diagnostics
  Pid parent = 0;          // 0 = created by the harness (no parent)
  sim::TaskId task = sim::kNoTask;
  ProcStatus status = ProcStatus::embryo;

  DescriptorTable fds;

  // ---- the paper's three metering fields ----
  SocketId meter_sock = 0;           // hidden from the descriptor table
  meter::Flags meter_flags = 0;
  /// Resolved meter-socket handle, memoized by id: World keeps Socket
  /// objects alive (and at stable addresses) for its whole lifetime, so
  /// meter_emit skips the socket-table lookup on every metered event. Only
  /// trusted while `meter_sock_cache_id == meter_sock`; destruction shows
  /// up in the cached object's own state.
  Socket* meter_sock_cache = nullptr;
  SocketId meter_sock_cache_id = 0;
  /// The owning machine, resolved once: a process never migrates, and
  /// Machine objects are as long-lived as Sockets.
  Machine* machine_cache = nullptr;
  util::Bytes meter_pending;         // serialized, unsent meter messages
  std::uint32_t meter_pending_count = 0;
  /// Set when the meter connection died under the process (dead filter,
  /// reset socket): metered events are then counted as accounted drops
  /// instead of buffered, and the parent got a meter_lost child change.
  bool meter_degraded = false;

  // ---- accounting ----
  util::Duration cpu_used{0};        // microsecond-precise internal total

  // ---- control (stop / continue / kill) ----
  bool stop_requested = false;  // stop at the next kernel checkpoint
  bool in_stop = false;         // parked at the stop gate now
  /// True while the process sits in its *creation* suspension (§3.5.1's
  /// "suspended prior to the start of its execution"): entering and
  /// leaving that state is not a state *change*, so no SIGCHLD-style
  /// notification is sent for it.
  bool initial_suspend = false;
  WaitChannel stop_gate;
  int exit_status = 0;
  bool killed = false;

  // ---- child state-change notifications (SIGCHLD stand-in) ----
  std::deque<ChildChange> child_changes;
  WaitChannel child_wait;

  /// Call-site tag recorded as "pc" in meter messages (apps may set it).
  std::uint32_t pc = 0;

  // ---- per-process metering statistics (for experiments) ----
  std::uint64_t meter_events = 0;
  std::uint64_t meter_flushes = 0;          // batches delivered
  std::uint64_t meter_bytes = 0;            // bytes delivered
  std::uint64_t meter_dropped_batches = 0;  // batches lost: no meter socket
  std::uint64_t meter_dropped_bytes = 0;
  std::uint64_t syscalls = 0;
};

}  // namespace dpm::kernel
