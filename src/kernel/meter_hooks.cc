#include "kernel/meter_hooks.h"

#include <algorithm>

#include "kernel/machine.h"

namespace dpm::kernel {

namespace {

/// Books CPU time for kernel metering work without blocking the process:
/// the machine's CPU is considered busy for `d` longer, and the time is
/// charged to the process (it pays for its own monitoring, as in the
/// paper's real kernel).
void book_cpu(World& world, Machine& m, Process& p, util::Duration d) {
  if (d.count() <= 0) return;
  const util::TimePoint now = world.exec().now();
  m.cpu_free_at = std::max(m.cpu_free_at, now) + d;
  p.cpu_used += d;
}

/// Headroom reserved beyond the flush threshold: the byte threshold is
/// checked only after a message is appended, so the pending buffer can
/// overshoot it by one message before the flush empties it.
constexpr std::size_t kPendingSlack = 256;

/// True while the meter socket can still move bytes toward a live filter.
bool meter_conn_healthy(World& world, const Socket* ms) {
  if (ms == nullptr || ms->sstate != Socket::StreamState::connected ||
      ms->peer == 0 || ms->eof) {
    return false;
  }
  if (ms->ring) {
    // Ring transport: consumer-side teardown closes the shared ring in the
    // same step that destroys the peer socket, so the closed flag already
    // answers the peer-liveness question — no per-event socket lookup.
    return !ms->ring->closed;
  }
  return world.find_socket(ms->peer) != nullptr;
}

}  // namespace

// The meter connection died underneath the process: release it, flip to
// accounted drop mode and tell the parent (the meterdaemon forwards this
// upstream as a state note). Shared by the legacy flush path and the ring
// emit path so both degrade identically.
void meter_degrade(World& world, Process& p) {
  if (p.meter_sock == 0) return;
  world.socket_unref(p.meter_sock);
  p.meter_sock = 0;
  p.meter_degraded = true;
  Machine& mm = world.machine(p.machine);
  world.push_child_change(mm, p.parent,
                          ChildChange{p.pid, ChildEvent::meter_lost, 0});
}

void meter_emit(World& world, Process& p, MeterEventDraft&& draft) {
  if ((p.meter_flags & draft.guard) == 0) return;
  if (p.meter_sock == 0) {
    if (p.meter_degraded) {
      // Accounted drop mode: the meter connection died under the process
      // (dead filter, reset socket). Events are counted — emitted and
      // dropped in the same breath — instead of buffered, so conservation
      // stays exact without unbounded pending growth.
      ++p.meter_events;
      world.mobs_.events->add(1);
      world.mobs_.dropped_records->add(1);
    }
    return;
  }

  if (p.machine_cache == nullptr) p.machine_cache = &world.machine(p.machine);
  Machine& m = *p.machine_cache;
  const WorldConfig& cfg = world.config();

  // Aggregate-init so the body variant is move-constructed in place instead
  // of default-constructed and reassigned (this runs once per metered event).
  meter::MeterMsg msg{meter::MeterHeader{}, std::move(draft.body)};
  msg.header.machine = m.index;
  msg.header.cpu_time = m.clock.read_us(world.exec().now());
  const std::int64_t grain = cfg.cpu_grain.count();
  const std::int64_t cpu_used = p.cpu_used.count();
  // Below one grain the quantized reading is zero; skip the division that
  // otherwise runs on every metered event.
  msg.header.proc_time = cpu_used < grain ? 0 : (cpu_used / grain) * grain;

  // Ring transport: encode straight into the shared ring, no pending batch
  // and no per-batch fabric payload. The conservation invariant is kept
  // event by event — every emitted record is immediately either in the
  // ring (buffered), dropped on overflow, or dropped by degrade.
  if (p.meter_sock_cache_id != p.meter_sock) {
    p.meter_sock_cache = world.find_socket(p.meter_sock);
    p.meter_sock_cache_id = p.meter_sock;
  }
  Socket* ms = p.meter_sock_cache;
  // A cached socket may have been destroyed since; the object survives
  // (World keeps it), so its own state carries the verdict find_socket
  // would give.
  if (ms != nullptr && ms->sstate == Socket::StreamState::closed &&
      ms->refs == 0) {
    ms = nullptr;
  }
  if (ms && ms->ring) {
    if (!meter_conn_healthy(world, ms)) {
      meter_degrade(world, p);
      ++p.meter_events;
      world.mobs_.events->add(1);
      world.mobs_.dropped_records->add(1);
      return;
    }
    meter::MeterRing& ring = *ms->ring;
    ++p.meter_events;
    world.mobs_.events->add(1);
    book_cpu(world, m, p, cfg.costs.meter_event);
    const std::size_t wrote = ring.push(msg);
    if (wrote == 0) {
      // Overflow-to-drop: the record did not fit the free space. It is
      // dropped whole with exact accounting — never truncated, never
      // wedged half-written — and the consumer gets an urgent doorbell so
      // the ring drains instead of dropping the whole burst.
      const std::size_t sz = msg.wire_size();
      p.meter_dropped_bytes += sz;
      world.mobs_.dropped_records->add(1);
      world.mobs_.dropped_bytes->add(sz);
      world.mobs_.ring_overflow_drops->add(1);
      world.kernel_ring_wakeup(p.meter_sock, /*reliable=*/false);
      return;
    }
    p.meter_bytes += wrote;
    world.mobs_.bytes->add(wrote);
    world.mobs_.ring_occupancy->add(static_cast<std::int64_t>(wrote));
    ring.unsignalled_bytes += wrote;
    ++ring.unsignalled_records;
    const bool immediate = (p.meter_flags & meter::M_IMMEDIATE) != 0;
    if (immediate || ring.unsignalled_bytes >= cfg.meter_ring_wakeup_bytes) {
      world.kernel_ring_wakeup(p.meter_sock, /*reliable=*/false);
    }
    return;
  }

  // Encode straight into the pending batch. The reservation covers a full
  // batch (re-established after meter_flush's swap hands the capacity
  // away), so steady-state emission appends without reallocating.
  if (p.meter_pending.capacity() < cfg.meter_buffer_bytes + kPendingSlack) {
    p.meter_pending.reserve(cfg.meter_buffer_bytes + kPendingSlack);
  }
  const std::size_t before = p.meter_pending.size();
  msg.serialize_into(p.meter_pending);
  ++p.meter_pending_count;
  ++p.meter_events;
  world.mobs_.events->add(1);
  world.mobs_.pending_bytes->add(
      static_cast<std::int64_t>(p.meter_pending.size() - before));

  book_cpu(world, m, p, cfg.costs.meter_event);

  const bool immediate = (p.meter_flags & meter::M_IMMEDIATE) != 0;
  if (immediate || p.meter_pending_count >= cfg.meter_buffer_msgs ||
      p.meter_pending.size() >= cfg.meter_buffer_bytes) {
    meter_flush(world, p);
  }
}

void meter_flush(World& world, Process& p) {
  // Ring transport: nothing is batched in the process — flushing means
  // forcing the doorbell so the consumer drains what is already in the
  // ring. The wakeup rides reliably: flushes happen at termination and at
  // setmeter changes, where the ring must drain even under fault storms.
  if (Socket* ms = p.meter_sock ? world.find_socket(p.meter_sock) : nullptr;
      ms && ms->ring && p.meter_pending.empty()) {
    if (!meter_conn_healthy(world, ms)) {
      meter_degrade(world, p);
      return;
    }
    if (ms->ring->unsignalled_bytes > 0) {
      Machine& m = world.machine(p.machine);
      book_cpu(world, m, p, world.config().costs.meter_flush_base);
      ++p.meter_flushes;
      world.mobs_.flushes->add(1);
      world.kernel_ring_wakeup(p.meter_sock, /*reliable=*/true);
    }
    return;
  }
  if (p.meter_pending.empty()) return;
  util::Bytes batch;
  batch.swap(p.meter_pending);
  const std::uint32_t batch_msgs = p.meter_pending_count;
  p.meter_pending_count = 0;
  // The occupancy gauge drops on *every* flush outcome — the dropped-batch
  // path empties the buffer just as surely as a delivered one (leaving the
  // gauge high after a drop once overstated occupancy forever).
  world.mobs_.pending_bytes->sub(static_cast<std::int64_t>(batch.size()));

  // A meter socket that has died underneath the process (peer reset, EOF,
  // connection torn down by a fault) is as useless as no socket at all.
  Socket* ms = p.meter_sock == 0 ? nullptr : world.find_socket(p.meter_sock);
  if (!meter_conn_healthy(world, ms)) {
    // Without a usable meter socket the batch is simply lost (Appendix C):
    // no send happens, so no CPU is charged and nothing is counted as
    // delivered — the loss lands in the dropped counters instead.
    ++p.meter_dropped_batches;
    p.meter_dropped_bytes += batch.size();
    world.mobs_.dropped_batches->add(1);
    world.mobs_.dropped_bytes->add(batch.size());
    world.mobs_.dropped_records->add(batch_msgs);
    meter_degrade(world, p);
    return;
  }

  Machine& m = world.machine(p.machine);
  const auto& costs = world.config().costs;
  book_cpu(world, m, p,
           costs.meter_flush_base +
               util::usec(costs.meter_flush_per_kb.count() *
                          static_cast<std::int64_t>(batch.size()) / 1024));

  ++p.meter_flushes;
  p.meter_bytes += batch.size();
  world.mobs_.flushes->add(1);
  world.mobs_.bytes->add(batch.size());
  world.mobs_.batch_bytes->record(static_cast<std::int64_t>(batch.size()));
  world.mobs_.batch_msgs->record(batch_msgs);

  world.kernel_stream_send(p.meter_sock, std::move(batch), batch_msgs);
}

}  // namespace dpm::kernel
