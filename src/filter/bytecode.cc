#include "filter/bytecode.h"

#include <algorithm>
#include <numeric>

namespace dpm::filter {

namespace {

bool apply_op(CmpOp op, int cmp) {
  switch (op) {
    case CmpOp::eq: return cmp == 0;
    case CmpOp::ne: return cmp != 0;
    case CmpOp::lt: return cmp < 0;
    case CmpOp::gt: return cmp > 0;
    case CmpOp::le: return cmp <= 0;
    case CmpOp::ge: return cmp >= 0;
  }
  return false;
}

}  // namespace

FilterBytecode FilterBytecode::lower(const CompiledTemplates& compiled) {
  FilterBytecode out;
  out.accept_all_ = compiled.accept_all_;
  out.progs_.resize(compiled.plans_.size());
  for (std::size_t t = 0; t < compiled.plans_.size(); ++t) {
    const CompiledTemplates::EventPlan& ep = compiled.plans_[t];
    Program& p = out.progs_[t];
    if (!ep.valid) continue;
    p.runnable = ep.wire.viewable();
    if (!p.runnable) continue;
    p.type = static_cast<std::uint32_t>(t);
    p.wire = ep.wire;
    p.rules.reserve(ep.rules.size());
    for (const CompiledTemplates::RulePlan& rp : ep.rules) {
      Program::RuleSrc src;
      src.clauses = rp.clauses;
      src.discard = rp.discard;
      p.rules.push_back(std::move(src));
    }
    p.fail_counts.resize(p.rules.size());
    for (std::size_t r = 0; r < p.rules.size(); ++r) {
      p.fail_counts[r].assign(p.rules[r].clauses.size(), 0);
    }
    generate(p);
  }
  return out;
}

void FilterBytecode::generate(Program& p) {
  p.code.clear();
  p.lits.clear();
  const std::vector<std::string>& names = p.wire.field_names();
  for (std::size_t r = 0; r < p.rules.size(); ++r) {
    const std::size_t rule_start = p.code.size();
    bool dead = false;
    for (std::size_t c = 0; c < p.rules[r].clauses.size(); ++c) {
      const CompiledTemplates::ClausePlan& cp = p.rules[r].clauses[c];
      if (cp.wildcard) continue;  // always holds; lowers to nothing
      if (!cp.rhs_is_field && cp.rhs_num && cp.lhs < names.size() &&
          names[cp.lhs] == "type") {
        // Type clause against a numeric literal: this program only ever
        // sees records of its own type, so the clause is decided here.
        const auto t = static_cast<std::int64_t>(p.type);
        const int cmp = (t < *cp.rhs_num) ? -1 : (t > *cp.rhs_num) ? 1 : 0;
        if (apply_op(cp.op, cmp)) continue;  // always holds for this type
        dead = true;  // the rule can never match this type
        break;
      }
      Instr in;
      in.cmp = cp.op;
      in.a = static_cast<std::uint16_t>(cp.lhs);
      in.src_rule = static_cast<std::uint16_t>(r);
      in.src_clause = static_cast<std::uint16_t>(c);
      if (cp.rhs_is_field) {
        in.op = Op::cmp_field;
        in.b = static_cast<std::uint16_t>(cp.rhs_field);
      } else {
        in.op = Op::cmp_imm;
        if (cp.rhs_num) {
          // An integer field against a numeric literal always compares
          // numerically: burn the field's wire location into the op.
          if (const auto loc = p.wire.int_loc(cp.lhs)) {
            in.op = Op::cmp_imm_int;
            in.off = static_cast<std::uint32_t>(loc->offset);
            in.len = static_cast<std::uint8_t>(loc->length);
          }
        }
        in.b = static_cast<std::uint16_t>(p.lits.size());
        p.lits.push_back(Literal{cp.rhs_num, cp.rhs_text});
      }
      p.code.push_back(in);
    }
    if (dead) {
      // Roll back the clauses emitted before the impossible type clause;
      // they were never back-patched.
      p.code.resize(rule_start);
      continue;
    }
    Instr acc;
    acc.op = Op::accept;
    acc.a = static_cast<std::uint16_t>(r);
    p.code.push_back(acc);
    // Back-patch this rule's clause fails to the next rule's first op.
    const std::uint32_t next = static_cast<std::uint32_t>(p.code.size());
    for (std::size_t i = rule_start; i + 1 < p.code.size(); ++i) {
      p.code[i].fail = next;
    }
  }
  p.code.push_back(Instr{});  // Op::reject
}

void FilterBytecode::maybe_reorder(Program& p) {
  if (++p.evals < kLearnWindow) return;
  p.reordered = true;
  bool changed = false;
  for (std::size_t r = 0; r < p.rules.size(); ++r) {
    auto& clauses = p.rules[r].clauses;
    const auto& fails = p.fail_counts[r];
    std::vector<std::size_t> order(clauses.size());
    std::iota(order.begin(), order.end(), 0);
    // Most-rejecting clause first; stable so ties keep source order.
    std::stable_sort(order.begin(), order.end(),
                     [&fails](std::size_t a, std::size_t b) {
                       return fails[a] > fails[b];
                     });
    if (std::is_sorted(order.begin(), order.end())) continue;
    std::vector<CompiledTemplates::ClausePlan> next;
    next.reserve(clauses.size());
    for (std::size_t i : order) next.push_back(std::move(clauses[i]));
    clauses = std::move(next);
    changed = true;
  }
  if (changed) {
    generate(p);
    ++reorders_;
  }
}

std::optional<FilterBytecode::Decision> FilterBytecode::evaluate(
    const RecordView& v, const std::string_view* strings) {
  if (accept_all_) return Decision{true, nullptr};
  if (v.type >= progs_.size()) return std::nullopt;
  Program& p = progs_[v.type];
  if (!p.runnable) return std::nullopt;

  std::uint64_t ops = 0;
  std::uint32_t pc = 0;
  std::optional<Decision> result;
  while (!result) {
    const Instr& in = p.code[pc];
    ++ops;
    bool hold = false;
    switch (in.op) {
      case Op::accept: {
        const std::vector<bool>& d = p.rules[in.a].discard;
        result = Decision{true, d.empty() ? nullptr : &d};
        continue;
      }
      case Op::reject:
        result = Decision{false, nullptr};
        continue;
      case Op::cmp_imm_int: {
        // Same bounds rule as field(): a too-short record yields no value
        // and the clause fails. Reads and sign-extends like read_le.
        if (in.off + in.len <= v.size) {
          std::uint64_t raw = 0;
          for (std::size_t i = in.len; i-- > 0;) {
            raw = (raw << 8) | v.data[in.off + i];
          }
          if (in.len < 8 && (raw & (1ULL << (8 * in.len - 1)))) {
            raw |= ~((1ULL << (8 * in.len)) - 1);
          }
          const auto lhs = static_cast<std::int64_t>(raw);
          const std::int64_t rhs = *p.lits[in.b].num;
          const int cmp = (lhs < rhs) ? -1 : (lhs > rhs) ? 1 : 0;
          hold = apply_op(in.cmp, cmp);
        }
        break;
      }
      case Op::cmp_imm: {
        const auto lhs = p.wire.field(v, in.a, strings);
        if (lhs) {
          const Literal& lit = p.lits[in.b];
          const auto ln = field_view_num(*lhs);
          int cmp;
          if (ln && lit.num) {
            cmp = (*ln < *lit.num) ? -1 : (*ln > *lit.num) ? 1 : 0;
          } else {
            cmp = field_view_text_cmp(*lhs, lit.text);
          }
          hold = apply_op(in.cmp, cmp);
        }
        break;
      }
      case Op::cmp_field: {
        const auto lhs = p.wire.field(v, in.a, strings);
        const auto rhs = p.wire.field(v, in.b, strings);
        if (lhs && rhs) {
          hold = apply_op(in.cmp, field_view_cmp(*lhs, *rhs));
        }
        break;
      }
    }
    if (hold) {
      ++pc;
    } else {
      if (!p.reordered) ++p.fail_counts[in.src_rule][in.src_clause];
      pc = in.fail;
    }
  }
  ops_ += ops;
  if (ops_counter_ != nullptr) ops_counter_->add(ops);
  if (!p.reordered) maybe_reorder(p);  // guard here: no call once learned
  return result;
}

std::size_t FilterBytecode::program_count() const {
  return static_cast<std::size_t>(
      std::count_if(progs_.begin(), progs_.end(),
                    [](const Program& p) { return p.runnable; }));
}

}  // namespace dpm::filter
