file(REMOVE_RECURSE
  "CMakeFiles/dpm_apps.dir/apps/apps.cc.o"
  "CMakeFiles/dpm_apps.dir/apps/apps.cc.o.d"
  "CMakeFiles/dpm_apps.dir/apps/datagram_chat.cc.o"
  "CMakeFiles/dpm_apps.dir/apps/datagram_chat.cc.o.d"
  "CMakeFiles/dpm_apps.dir/apps/echo_server.cc.o"
  "CMakeFiles/dpm_apps.dir/apps/echo_server.cc.o.d"
  "CMakeFiles/dpm_apps.dir/apps/grid.cc.o"
  "CMakeFiles/dpm_apps.dir/apps/grid.cc.o.d"
  "CMakeFiles/dpm_apps.dir/apps/pingpong.cc.o"
  "CMakeFiles/dpm_apps.dir/apps/pingpong.cc.o.d"
  "CMakeFiles/dpm_apps.dir/apps/pipeline.cc.o"
  "CMakeFiles/dpm_apps.dir/apps/pipeline.cc.o.d"
  "CMakeFiles/dpm_apps.dir/apps/ring.cc.o"
  "CMakeFiles/dpm_apps.dir/apps/ring.cc.o.d"
  "CMakeFiles/dpm_apps.dir/apps/tsp.cc.o"
  "CMakeFiles/dpm_apps.dir/apps/tsp.cc.o.d"
  "libdpm_apps.a"
  "libdpm_apps.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dpm_apps.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
