// A rolling sum/count over a sliding sim-time window.
//
// The live aggregator reports *recent* rates (events/s over the last W
// microseconds of trace time), not lifetime averages — a stalled pipeline
// stage must read as 0/s even though its totals keep standing. Entries
// are (timestamp, weight) pairs in a deque; advance(now) evicts entries
// older than now - span. Timestamps within one window come from a single
// process's (or receiving process's) local clock, so they arrive
// monotonically; advance() clamps regressions instead of un-evicting.
#pragma once

#include <cstdint>
#include <deque>
#include <utility>

namespace dpm::analysis::live {

class RollingWindow {
 public:
  explicit RollingWindow(std::int64_t span_us = 1'000'000)
      : span_us_(span_us > 0 ? span_us : 1) {}

  /// Records `weight` at trace time `t_us` and evicts what fell out.
  void add(std::int64_t t_us, std::int64_t weight = 1) {
    entries_.emplace_back(t_us, weight);
    sum_ += weight;
    advance(t_us);
  }

  /// Evicts entries with t <= now - span. `now_us` never moves the window
  /// backwards.
  void advance(std::int64_t now_us) {
    if (now_us < now_us_) return;
    now_us_ = now_us;
    const std::int64_t cutoff = now_us_ - span_us_;
    while (!entries_.empty() && entries_.front().first <= cutoff) {
      sum_ -= entries_.front().second;
      entries_.pop_front();
    }
  }

  std::size_t count() const { return entries_.size(); }
  std::int64_t sum() const { return sum_; }
  std::int64_t span_us() const { return span_us_; }

  /// sum / window-span, in per-second units.
  double per_second() const {
    return static_cast<double>(sum_) * 1e6 / static_cast<double>(span_us_);
  }

 private:
  std::deque<std::pair<std::int64_t, std::int64_t>> entries_;
  std::int64_t span_us_;
  std::int64_t sum_ = 0;
  std::int64_t now_us_ = INT64_MIN;
};

}  // namespace dpm::analysis::live
