// Streaming vs batch causal analysis (analysis/live/ vs order_events).
//
// The streaming aggregator must earn its keep: consuming a trace one
// event at a time — with pairing, incremental Lamport/critical-path
// relaxation, and rolling windows all live — has to stay within ~15% of
// the batch pipeline (read_trace + order_events) it mirrors, or "run it
// during the computation" would be a tax nobody pays. Both sides consume
// identical trace text, produced by a FilterEngine over the shared
// pipeline workloads (workloads.h) plus a pairing-heavy stream workload
// that drives the relaxation machinery on every event:
//
//   batch:      read_trace(text) + order_events(trace)   per pass
//   streaming:  TraceTailer::feed in 8 KiB chunks into a fresh
//               LiveAnalysis (windows + critical path maintained) per pass
//
// Every run writes BENCH_live.json: per-workload events/sec for both
// sides, the streaming/batch ratio, and the equivalence verdict (pair
// counts and every Lamport clock compared). `bench_live --smoke` asserts
// only equivalence — timing assertions under ctest or sanitizers are
// flaky by construction; the recorded ratios are the benchmark's output.
#include "bench_util.h"

#include <cstdio>
#include <cstring>
#include <fstream>
#include <sstream>
#include <string>

#include "analysis/live/aggregator.h"
#include "analysis/ordering.h"
#include "analysis/trace_reader.h"
#include "obs/snapshot.h"
#include "util/strings.h"
#include "workloads.h"

namespace dpm::bench {
namespace {

/// Trace text of one workload: the records rendered by an accept-all
/// filter, exactly what a filter log (and thus both analysis paths)
/// contains.
std::string make_trace_text(Workload w, int events) {
  auto engine = make_engine(filter::EvalPath::view, /*rules=*/"");
  return engine.feed(1, make_batch(w, events));
}

/// The pipeline workloads exercise parsing, parking, and connection
/// joining but complete no send/receive pairs (their names never resolve).
/// This one drives the full happens-before machinery: a joined
/// connect/accept stream channel with every send paired to a
/// cross-machine receive, so incremental Lamport/critical-path relaxation
/// runs for each event.
std::string make_paired_trace_text(int events) {
  using namespace meter;
  std::vector<MeterMsg> msgs;
  msgs.reserve(static_cast<std::size_t>(events) + 2);
  auto stamp = [](MeterMsg m, std::uint16_t machine,
                  std::int64_t t) {
    m.header.machine = machine;
    m.header.cpu_time = t;
    m.header.proc_time = t / 10;
    return m;
  };
  MeterMsg c;
  c.body = MeterConnect{1, 0, 5, "111", "222"};
  msgs.push_back(stamp(std::move(c), 1, 0));
  MeterMsg a;
  a.body = MeterAccept{2, 0, 6, 7, "222", "111"};
  msgs.push_back(stamp(std::move(a), 2, 500));
  for (int i = 0; i < events; ++i) {
    MeterMsg m;
    if (i % 2 == 0) {
      m.body = MeterSend{1, 0, 5,
                         static_cast<std::uint32_t>(64 + i % 512), ""};
      msgs.push_back(stamp(std::move(m), 1, 1000 * i));
    } else {
      m.body = MeterRecv{2, 0, 7,
                         static_cast<std::uint32_t>(64 + i % 512), ""};
      msgs.push_back(stamp(std::move(m), 2, 1000 * i + 700));
    }
  }
  util::Bytes batch;
  for (const auto& m : msgs) m.serialize_into(batch);
  auto engine = make_engine(filter::EvalPath::view, /*rules=*/"");
  return engine.feed(1, batch);
}

struct WorkloadResult {
  const char* workload = "";
  int events = 0;            // trace events parsed per pass
  std::size_t pairs = 0;     // message pairs (identical on both sides)
  double batch_eps = 0;      // events/sec, read_trace + order_events
  double live_eps = 0;       // events/sec, TraceTailer + LiveAnalysis
  double ratio = 0;          // live / batch
  bool equivalent = false;   // pairs + every Lamport clock match
};

/// Streams `text` through a fresh LiveAnalysis in 8 KiB chunks.
analysis::live::LiveAnalysis stream_once(const std::string& text) {
  analysis::live::LiveAnalysis live;
  analysis::live::TraceTailer tailer(live);
  constexpr std::size_t kChunk = 8192;
  for (std::size_t pos = 0; pos < text.size(); pos += kChunk) {
    tailer.feed(std::string_view(text).substr(pos, kChunk));
  }
  tailer.finish();
  return live;
}

bool check_equivalence(const std::string& text, std::size_t* pairs_out) {
  const analysis::Trace trace = analysis::read_trace(text);
  const analysis::Ordering ord = analysis::order_events(trace);
  analysis::live::LiveAnalysis live = stream_once(text);
  const auto st = live.stats();
  *pairs_out = st.message_pairs;
  if (live.events() != trace.events.size()) return false;
  if (st.message_pairs != ord.message_pairs) return false;
  if (st.cross_machine_pairs != ord.cross_machine_pairs) return false;
  if (st.had_cycle != ord.had_cycle) return false;
  for (std::size_t i = 0; i < trace.events.size(); ++i) {
    if (live.lamport_of(i) != ord.events[i].lamport) return false;
    const auto ms = live.matched_send_of(i);
    if (ms != ord.events[i].matched_send) return false;
  }
  return true;
}

WorkloadResult run_workload(const char* name, const std::string& text,
                            double min_seconds, int reps) {
  WorkloadResult r;
  r.workload = name;
  {
    const analysis::Trace probe = analysis::read_trace(text);
    r.events = static_cast<int>(probe.events.size());
  }
  r.equivalent = check_equivalence(text, &r.pairs);

  const auto per_pass = static_cast<std::uint64_t>(r.events);
  r.batch_eps = best_rate(
      reps, per_pass,
      [&] {
        const analysis::Trace trace = analysis::read_trace(text);
        const analysis::Ordering ord = analysis::order_events(trace);
        benchmark::DoNotOptimize(ord.message_pairs);
      },
      min_seconds);
  r.live_eps = best_rate(
      reps, per_pass,
      [&] {
        analysis::live::LiveAnalysis live = stream_once(text);
        benchmark::DoNotOptimize(live.stats().message_pairs);
      },
      min_seconds);
  r.ratio = r.batch_eps > 0 ? r.live_eps / r.batch_eps : 0;
  return r;
}

constexpr const char* kJsonPath = "BENCH_live.json";

bool write_bench_json(const WorkloadResult (&rs)[4],
                      const std::string& snapshot_jsonl,
                      const std::string& path) {
  std::ofstream out(path, std::ios::trunc);
  if (!out) return false;
  out << "{\n  \"bench\": \"live_vs_batch_analysis\",\n  \"workloads\": [\n";
  for (std::size_t i = 0; i < 4; ++i) {
    const WorkloadResult& r = rs[i];
    out << util::strprintf(
        "    {\n"
        "      \"workload\": \"%s\",\n"
        "      \"events\": %d,\n"
        "      \"message_pairs\": %zu,\n"
        "      \"batch_events_per_s\": %.0f,\n"
        "      \"live_events_per_s\": %.0f,\n"
        "      \"live_over_batch\": %.3f,\n"
        "      \"equivalent\": %s\n"
        "    }%s\n",
        r.workload, r.events, r.pairs, r.batch_eps, r.live_eps, r.ratio,
        r.equivalent ? "true" : "false", i + 1 < 4 ? "," : "");
  }
  out << util::strprintf(
      "  ],\n"
      "  \"obs_snapshot\": %s\n"
      "}\n",
      obs::jsonl_to_json_array(snapshot_jsonl, 4).c_str());
  return out.good();
}

int run(int events, double min_seconds, int reps, bool smoke) {
  WorkloadResult rs[4];
  int i = 0;
  for (Workload w : kWorkloads) {
    rs[i++] = run_workload(workload_name(w), make_trace_text(w, events),
                           min_seconds, reps);
  }
  rs[i] = run_workload("paired", make_paired_trace_text(events), min_seconds,
                       reps);

  // The live.* registry of one streaming pass over the paired workload,
  // embedded so the result file carries its own ground-truth counters.
  analysis::live::LiveAnalysis live =
      stream_once(make_paired_trace_text(events));
  const std::string snapshot = live.obs().snapshot_jsonl();
  const std::string snap_err = obs::validate_snapshot(snapshot);
  if (!snap_err.empty()) {
    std::fprintf(stderr, "bench_live: bad embedded snapshot: %s\n",
                 snap_err.c_str());
    return 1;
  }
  if (!write_bench_json(rs, snapshot, kJsonPath)) {
    std::fprintf(stderr, "bench_live: cannot write %s\n", kJsonPath);
    return 1;
  }

  bool all_ok = true;
  for (const WorkloadResult& r : rs) {
    std::printf(
        "bench_live%s: %-13s %6d events, %5zu pairs: batch %9.0f ev/s, "
        "live %9.0f ev/s (%.2fx), equivalent=%s\n",
        smoke ? " --smoke" : "", r.workload, r.events, r.pairs, r.batch_eps,
        r.live_eps, r.ratio, r.equivalent ? "true" : "false");
    all_ok = all_ok && r.equivalent;
    // A workload that completes zero pairs exercises none of the
    // relaxation machinery — the measurement would be vacuous.
    if (r.pairs == 0) {
      std::fprintf(stderr, "bench_live: workload '%s' completed no pairs\n",
                   r.workload);
      all_ok = false;
    }
  }
  std::printf("wrote %s\n", kJsonPath);
  return all_ok ? 0 : 1;
}

}  // namespace
}  // namespace dpm::bench

int main(int argc, char** argv) {
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--smoke") == 0) {
      // Equivalence is the pass/fail signal; the ratios are recorded, not
      // asserted (sanitized or loaded machines make timing flaky).
      return dpm::bench::run(/*events=*/1500, /*min_seconds=*/0.15,
                             /*reps=*/2, /*smoke=*/true);
    }
  }
  return dpm::bench::run(/*events=*/6000, /*min_seconds=*/0.5, /*reps=*/5,
                         /*smoke=*/false);
}
