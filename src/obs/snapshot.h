// Snapshot schema: the registry serialized as JSONL, one object per line.
//
//   {"kind":"snapshot","seq":1,"t_us":12345,"metrics":42,"spans":7}
//   {"kind":"counter","key":"kernel.meter_events","value":128}
//   {"kind":"gauge","key":"kernel.meter_pending_bytes","value":0,"high_water":1040}
//   {"kind":"histogram","key":"net.delivery_us","count":9,"sum":9921,
//    "min":54,"max":2047,"p50":1023,"p90":2047,"p99":2047,
//    "buckets":[[6,1],[10,4],[11,4]]}
//   {"kind":"span","id":3,"parent":2,"name":"filter.select_round",
//    "phase":"begin","t_us":5000}
//
// The header line comes first; instrument lines are sorted by key (maps
// iterate in order), span lines follow in ring order. "buckets" lists
// only non-empty log2 buckets as [index, count] pairs.
//
// This header also carries the parser/validator (used by the dpmstat tool
// and the ctest schema smoke) and a structural diff between two
// snapshots (what `dpmstat diff` prints).
#pragma once

#include <cstdint>
#include <map>
#include <optional>
#include <string>
#include <vector>

namespace dpm::obs {

class Registry;

/// Appends one full snapshot of `reg` to `out` as JSONL.
void write_snapshot_jsonl(const Registry& reg, std::uint64_t seq,
                          std::string& out);

/// Wraps the JSONL lines of one snapshot as a JSON array ("[\n {...},\n
/// ...]\n") so benchmark JSON files can embed a snapshot as a value.
std::string jsonl_to_json_array(const std::string& jsonl, int indent = 2);

// ---- parsed form ----------------------------------------------------------

struct GaugeSample {
  std::int64_t value = 0;
  std::int64_t high_water = 0;
};

struct HistogramSample {
  std::uint64_t count = 0;
  std::int64_t sum = 0;
  std::int64_t min = 0;
  std::int64_t max = 0;
  std::int64_t p50 = 0;
  std::int64_t p90 = 0;
  std::int64_t p99 = 0;
  std::vector<std::pair<int, std::uint64_t>> buckets;  // [index, count]
};

struct SpanSample {
  std::uint64_t id = 0;
  std::uint64_t parent = 0;
  std::string name;
  bool begin = false;
  std::int64_t t_us = 0;
};

/// One parsed snapshot (the last one in the text, for multi-snapshot
/// streams appended by the periodic timer).
struct Snapshot {
  std::uint64_t seq = 0;
  std::int64_t t_us = 0;
  std::map<std::string, std::uint64_t> counters;
  std::map<std::string, GaugeSample> gauges;
  std::map<std::string, HistogramSample> histograms;
  std::vector<SpanSample> spans;

  /// Distinct "subsystem" prefixes (the part of each key before the first
  /// '.') across all instruments.
  std::vector<std::string> subsystems() const;
};

/// Parses snapshot JSONL; every line must match the schema above. On a
/// stream holding several snapshots the *last* one wins (counters are
/// cumulative, so the last snapshot is the current state). Returns
/// nullopt and fills `err` (if given) on any malformed line.
std::optional<Snapshot> parse_snapshot(const std::string& text,
                                       std::string* err = nullptr);

/// Schema check used by the ctest smoke: parseable and internally
/// consistent (header present, gauge high-water >= value when value >= 0,
/// histogram bucket counts summing to "count"). Empty string = valid.
std::string validate_snapshot(const std::string& text);

/// Human-readable diff of b relative to a: counter deltas, gauge moves,
/// histogram count/sum growth. Instruments present in only one snapshot
/// are reported explicitly — "(new)" for keys only in b, "(gone)" for
/// keys only in a — never skipped silently, so a diff across registries
/// of different shapes (e.g. before/after a live-analysis sink attaches)
/// stays truthful. (What `dpmstat diff` prints.)
std::string diff_snapshots(const Snapshot& a, const Snapshot& b);

}  // namespace dpm::obs
