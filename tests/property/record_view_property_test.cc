// Property test for the zero-copy filter path: on random valid meter
// batches, RecordView field extraction must equal owned-Record extraction
// field for field, and a view-path FilterEngine must render byte-identical
// logs (and identical counters) to an owned-path engine under random rule
// sets — whole-batch and chunked feeds alike.
#include <gtest/gtest.h>

#include "filter/filter_program.h"
#include "filter/trace.h"
#include "meter/metermsgs.h"
#include "util/rng.h"

namespace dpm::filter {
namespace {

std::string random_name(util::Rng& rng) {
  if (rng.bernoulli(0.15)) return "";  // unknown peer (§4.1)
  if (rng.bernoulli(0.2)) return "addr-" + std::to_string(rng.uniform(0, 4));
  return std::to_string(rng.uniform(0, 300000));
}

/// A random message drawn from all ten event types.
meter::MeterMsg random_msg(util::Rng& rng) {
  using namespace meter;
  MeterMsg m;
  const Pid pid = static_cast<Pid>(rng.uniform(1, 30));
  const SocketId sock = rng.uniform(0, 8);
  switch (rng.uniform(0, 10)) {
    case 0:
      m.body = MeterSend{pid, 0, sock,
                         static_cast<std::uint32_t>(rng.uniform(0, 2048)),
                         random_name(rng)};
      break;
    case 1:
      m.body = MeterRecv{pid, 0, sock,
                         static_cast<std::uint32_t>(rng.uniform(0, 2048)),
                         random_name(rng)};
      break;
    case 2: m.body = MeterRecvCall{pid, 0, sock}; break;
    case 3:
      m.body = MeterSockCrt{pid, 0, sock,
                            static_cast<std::uint32_t>(rng.uniform(1, 3)),
                            static_cast<std::uint32_t>(rng.uniform(1, 3)), 0};
      break;
    case 4: m.body = MeterDup{pid, 0, sock, sock + 1}; break;
    case 5: m.body = MeterDestSock{pid, 0, sock}; break;
    case 6: m.body = MeterFork{pid, 0, static_cast<Pid>(pid + 1)}; break;
    case 7:
      m.body = MeterAccept{pid, 0, sock, sock + 1, random_name(rng),
                           random_name(rng)};
      break;
    case 8:
      m.body = MeterConnect{pid, 0, sock, random_name(rng), random_name(rng)};
      break;
    default:
      m.body = MeterTermProc{pid, 0, static_cast<std::int32_t>(rng.uniform(0, 3)) - 1};
      break;
  }
  m.header.machine = static_cast<std::uint16_t>(rng.uniform(0, 6));
  m.header.cpu_time = rng.uniform(0, 20000);
  m.header.proc_time = rng.uniform(0, 1000);
  return m;
}

// Same rule grammar as the compiled-equivalence property test: header
// fields, per-type fields, a bogus name, every operator, wildcards,
// discards, numeric / field-reference / string literals.
const char* kFields[] = {"machine",  "type",   "pid",      "sock",
                         "msgLength", "cpuTime", "destName", "sockName",
                         "peerName",  "newPid",  "size",     "ghost"};
const char* kOps[] = {"=", "!=", "<", ">", "<=", ">="};

std::string random_rules(util::Rng& rng) {
  std::string text;
  const int nrules = static_cast<int>(rng.uniform(0, 4));  // 0 = accept all
  for (int r = 0; r < nrules; ++r) {
    std::string line;
    const int nclauses = static_cast<int>(rng.uniform(1, 3));
    for (int c = 0; c < nclauses; ++c) {
      if (!line.empty()) line += ", ";
      line += kFields[rng.uniform(0, 11)];
      const bool wildcard = rng.bernoulli(0.2);
      line += wildcard ? "=" : kOps[rng.uniform(0, 5)];
      if (rng.bernoulli(0.25)) line += "#";
      if (wildcard) {
        line += "*";
      } else {
        switch (rng.uniform(0, 3)) {
          case 0:
            line += (rng.bernoulli(0.1) ? "00" : "") +
                    std::to_string(rng.uniform(0, 2048));
            break;
          case 1: line += kFields[rng.uniform(0, 11)]; break;
          case 2: line += std::to_string(rng.uniform(0, 300000)); break;
          default: line += "addr-" + std::to_string(rng.uniform(0, 4)); break;
        }
      }
    }
    text += line + "\n";
  }
  return text;
}

util::Bytes random_batch(util::Rng& rng, int n) {
  util::Bytes out;
  for (int i = 0; i < n; ++i) random_msg(rng).serialize_into(out);
  return out;
}

class RecordViewProperty : public ::testing::TestWithParam<std::uint64_t> {};

INSTANTIATE_TEST_SUITE_P(Seeds, RecordViewProperty,
                         ::testing::Range<std::uint64_t>(1, 11));

TEST_P(RecordViewProperty, ViewExtractionEqualsOwnedExtraction) {
  util::Rng rng(GetParam() * 1297);
  auto desc = Descriptions::parse(default_descriptions_text());
  ASSERT_TRUE(desc.has_value());

  const util::Bytes batch = random_batch(rng, 120);
  std::size_t pos = 0;
  int records = 0;
  while (pos < batch.size()) {
    const std::uint32_t size =
        static_cast<std::uint32_t>(batch[pos]) |
        static_cast<std::uint32_t>(batch[pos + 1]) << 8 |
        static_cast<std::uint32_t>(batch[pos + 2]) << 16 |
        static_cast<std::uint32_t>(batch[pos + 3]) << 24;
    auto v = make_record_view(batch.data() + pos, size);
    ASSERT_TRUE(v.has_value());
    auto rec = desc->decode(batch.data() + pos, size);
    ASSERT_TRUE(rec.has_value());
    pos += size;
    ++records;

    const WirePlan* wp = desc->wire_plan(v->type);
    ASSERT_NE(wp, nullptr);
    ASSERT_TRUE(wp->viewable());
    ASSERT_TRUE(wp->validate(*v));
    ASSERT_EQ(wp->field_count(), rec->fields.size());
    for (std::size_t i = 0; i < rec->fields.size(); ++i) {
      const auto fv = wp->field(*v, i);
      ASSERT_TRUE(fv.has_value());
      const FieldValue& ov = rec->fields[i].second;
      if (std::holds_alternative<std::int64_t>(ov)) {
        ASSERT_TRUE(std::holds_alternative<std::int64_t>(*fv))
            << rec->fields[i].first;
        EXPECT_EQ(std::get<std::int64_t>(ov), std::get<std::int64_t>(*fv));
      } else {
        ASSERT_TRUE(std::holds_alternative<std::string_view>(*fv))
            << rec->fields[i].first;
        EXPECT_EQ(std::get<std::string>(ov), std::get<std::string_view>(*fv));
      }
    }
  }
  EXPECT_EQ(records, 120);
}

TEST_P(RecordViewProperty, ViewEngineEqualsOwnedEngine) {
  util::Rng rng(GetParam() * 733 + 5);

  for (int trial = 0; trial < 8; ++trial) {
    const std::string rules = random_rules(rng);
    auto mk = [&](EvalPath path) {
      auto d = Descriptions::parse(default_descriptions_text());
      auto t = Templates::parse(rules);
      EXPECT_TRUE(t.has_value()) << rules;
      return FilterEngine(std::move(*d), std::move(*t), path);
    };
    const util::Bytes batch = random_batch(rng, 60);

    FilterEngine owned = mk(EvalPath::owned);
    FilterEngine view = mk(EvalPath::view);
    const std::string a = owned.feed(1, batch);
    const std::string b = view.feed(1, batch);
    ASSERT_EQ(a, b) << "rules:\n" << rules;

    // Chunked feed through the view engine: identical output again, and
    // chunk boundaries land mid-record (partial buffering path).
    std::string chunked;
    const std::size_t step = 1 + static_cast<std::size_t>(rng.uniform(1, 120));
    for (std::size_t pos = 0; pos < batch.size(); pos += step) {
      const std::size_t n = std::min(step, batch.size() - pos);
      chunked += view.feed(
          2, util::Bytes(batch.begin() + static_cast<std::ptrdiff_t>(pos),
                         batch.begin() + static_cast<std::ptrdiff_t>(pos + n)));
    }
    view.end_connection(2);
    ASSERT_EQ(chunked, a) << "rules:\n" << rules << "step " << step;

    const FilterStats& so = owned.stats();
    const FilterStats& sv = view.stats();
    EXPECT_EQ(so.records_in * 2, sv.records_in);
    EXPECT_EQ(so.accepted * 2, sv.accepted);
    EXPECT_EQ(so.rejected * 2, sv.rejected);
    EXPECT_EQ(so.malformed, 0u);
    EXPECT_EQ(sv.malformed, 0u);
    EXPECT_EQ(sv.truncated, 0u);
  }
}

TEST_P(RecordViewProperty, BytecodeEngineEqualsCompiledEngine) {
  // The two match engines behind the view path — the flat bytecode
  // interpreter (default) and the structured compiled walker — must render
  // byte-identical logs and identical counters on the same stream. Batches
  // are large enough to push hot types past the bytecode's adaptive
  // reorder window mid-stream.
  util::Rng rng(GetParam() * 911 + 13);

  for (int trial = 0; trial < 4; ++trial) {
    const std::string rules = random_rules(rng);
    auto mk = [&](MatchEngine match) {
      auto d = Descriptions::parse(default_descriptions_text());
      auto t = Templates::parse(rules);
      EXPECT_TRUE(t.has_value()) << rules;
      return FilterEngine(std::move(*d), std::move(*t), EvalPath::view,
                          nullptr, match);
    };
    const util::Bytes batch = random_batch(rng, 400);

    FilterEngine compiled = mk(MatchEngine::compiled);
    FilterEngine bytecode = mk(MatchEngine::bytecode);
    const std::string a = compiled.feed(1, batch);
    const std::string b = bytecode.feed(1, batch);
    ASSERT_EQ(a, b) << "rules:\n" << rules;

    // Chunked through the bytecode engine: the partial-buffer reassembly
    // path composes with the bytecode dispatch exactly like whole-batch.
    std::string chunked;
    const std::size_t step = 1 + static_cast<std::size_t>(rng.uniform(1, 200));
    for (std::size_t pos = 0; pos < batch.size(); pos += step) {
      const std::size_t n = std::min(step, batch.size() - pos);
      chunked += bytecode.feed(
          2, util::Bytes(batch.begin() + static_cast<std::ptrdiff_t>(pos),
                         batch.begin() + static_cast<std::ptrdiff_t>(pos + n)));
    }
    bytecode.end_connection(2);
    ASSERT_EQ(chunked, a) << "rules:\n" << rules << "step " << step;

    const FilterStats sc = compiled.stats();
    const FilterStats sb = bytecode.stats();
    EXPECT_EQ(sc.records_in * 2, sb.records_in);
    EXPECT_EQ(sc.accepted * 2, sb.accepted);
    EXPECT_EQ(sc.rejected * 2, sb.rejected);
    // Both engines decide on the compiled plan: nothing falls back to the
    // interpreted evaluator on either side.
    EXPECT_EQ(sc.eval_interpreted, 0u);
    EXPECT_EQ(sb.eval_interpreted, 0u);
    EXPECT_EQ(sc.eval_compiled * 2, sb.eval_compiled);
    // The bytecode engine accounts its dispatch work (the accept-all
    // short-circuit of an empty rule set executes no ops by design).
    if (!rules.empty()) {
      EXPECT_GT(bytecode.obs().counter("filter.bytecode_ops").value(), 0u);
    }
    EXPECT_EQ(compiled.obs().counter("filter.bytecode_ops").value(), 0u);
  }
}

}  // namespace
}  // namespace dpm::filter
