
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/integration/acquire_test.cc" "tests/CMakeFiles/integration_test.dir/integration/acquire_test.cc.o" "gcc" "tests/CMakeFiles/integration_test.dir/integration/acquire_test.cc.o.d"
  "/root/repo/tests/integration/apps_test.cc" "tests/CMakeFiles/integration_test.dir/integration/apps_test.cc.o" "gcc" "tests/CMakeFiles/integration_test.dir/integration/apps_test.cc.o.d"
  "/root/repo/tests/integration/controller_edge_test.cc" "tests/CMakeFiles/integration_test.dir/integration/controller_edge_test.cc.o" "gcc" "tests/CMakeFiles/integration_test.dir/integration/controller_edge_test.cc.o.d"
  "/root/repo/tests/integration/count_filter_test.cc" "tests/CMakeFiles/integration_test.dir/integration/count_filter_test.cc.o" "gcc" "tests/CMakeFiles/integration_test.dir/integration/count_filter_test.cc.o.d"
  "/root/repo/tests/integration/daemon_rpc_test.cc" "tests/CMakeFiles/integration_test.dir/integration/daemon_rpc_test.cc.o" "gcc" "tests/CMakeFiles/integration_test.dir/integration/daemon_rpc_test.cc.o.d"
  "/root/repo/tests/integration/failure_test.cc" "tests/CMakeFiles/integration_test.dir/integration/failure_test.cc.o" "gcc" "tests/CMakeFiles/integration_test.dir/integration/failure_test.cc.o.d"
  "/root/repo/tests/integration/grid_test.cc" "tests/CMakeFiles/integration_test.dir/integration/grid_test.cc.o" "gcc" "tests/CMakeFiles/integration_test.dir/integration/grid_test.cc.o.d"
  "/root/repo/tests/integration/pipeline_test.cc" "tests/CMakeFiles/integration_test.dir/integration/pipeline_test.cc.o" "gcc" "tests/CMakeFiles/integration_test.dir/integration/pipeline_test.cc.o.d"
  "/root/repo/tests/integration/scale_test.cc" "tests/CMakeFiles/integration_test.dir/integration/scale_test.cc.o" "gcc" "tests/CMakeFiles/integration_test.dir/integration/scale_test.cc.o.d"
  "/root/repo/tests/integration/session_test.cc" "tests/CMakeFiles/integration_test.dir/integration/session_test.cc.o" "gcc" "tests/CMakeFiles/integration_test.dir/integration/session_test.cc.o.d"
  "/root/repo/tests/integration/topology_test.cc" "tests/CMakeFiles/integration_test.dir/integration/topology_test.cc.o" "gcc" "tests/CMakeFiles/integration_test.dir/integration/topology_test.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/dpm_control.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/dpm_daemon.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/dpm_analysis.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/dpm_filter.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/dpm_apps.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/dpm_kernel.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/dpm_net.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/dpm_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/dpm_meter.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/dpm_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
