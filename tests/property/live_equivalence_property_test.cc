// Randomized streaming-vs-batch equivalence: on arbitrary multi-channel
// workloads with random log interleavings and clock offsets, LiveAnalysis
// fed one event at a time must agree with order_events() on every pair,
// every Lamport clock, and every anomaly count.
#include <gtest/gtest.h>

#include "analysis/analysis_testing.h"
#include "analysis/live/aggregator.h"
#include "analysis/ordering.h"
#include "util/rng.h"

namespace dpm::analysis {
namespace {

using dpm::analysis_testing::Stamp;
using meter::MeterAccept;
using meter::MeterConnect;
using meter::MeterRecv;
using meter::MeterSend;
using meter::MeterTermProc;

/// Random multi-connection workload (the ordering property test's shape):
/// random machine pairs, per-connection message counts, per-machine clock
/// offsets, and a random per-process-ordered interleaving into the log.
/// Crucially, connects/accepts land at random positions relative to the
/// traffic they route, so the streaming core's parking path is exercised
/// constantly.
std::vector<std::pair<Stamp, meter::MeterBody>> random_workload(
    util::Rng& rng, int nconns) {
  std::vector<std::vector<std::pair<Stamp, meter::MeterBody>>> streams;
  std::int64_t offsets[8];
  for (auto& o : offsets) o = rng.uniform(-50000, 50000);

  for (int c = 0; c < nconns; ++c) {
    const auto ma = static_cast<std::uint16_t>(rng.uniform(0, 7));
    const auto mb = static_cast<std::uint16_t>(rng.uniform(0, 7));
    const std::int32_t pa = 100 + 2 * c, pb = 101 + 2 * c;
    const auto sa = static_cast<std::uint64_t>(10 + 2 * c);
    const auto sb = static_cast<std::uint64_t>(11 + 2 * c);
    const std::string na = "n" + std::to_string(2 * c);
    const std::string nb = "n" + std::to_string(2 * c + 1);

    std::vector<std::pair<Stamp, meter::MeterBody>> a_events, b_events;
    std::int64_t t = rng.uniform(0, 5000);
    a_events.push_back(
        {Stamp{ma, t + offsets[ma], 0}, MeterConnect{pa, 0, sa, na, nb}});
    b_events.push_back({Stamp{mb, t + 200 + offsets[mb], 0},
                        MeterAccept{pb, 0, 20, sb, nb, na}});
    const int msgs = static_cast<int>(rng.uniform(1, 12));
    for (int i = 0; i < msgs; ++i) {
      t += rng.uniform(100, 2000);
      a_events.push_back(
          {Stamp{ma, t + offsets[ma], 0}, MeterSend{pa, 0, sa, 32, ""}});
      b_events.push_back({Stamp{mb, t + rng.uniform(200, 900) + offsets[mb], 0},
                          MeterRecv{pb, 0, sb, 32, ""}});
    }
    a_events.push_back(
        {Stamp{ma, t + 3000 + offsets[ma], 0}, MeterTermProc{pa, 0, 0}});
    b_events.push_back(
        {Stamp{mb, t + 3200 + offsets[mb], 0}, MeterTermProc{pb, 0, 0}});
    streams.push_back(std::move(a_events));
    streams.push_back(std::move(b_events));
  }

  std::vector<std::pair<Stamp, meter::MeterBody>> out;
  std::vector<std::size_t> cursor(streams.size(), 0);
  for (;;) {
    std::vector<std::size_t> ready;
    for (std::size_t s = 0; s < streams.size(); ++s) {
      if (cursor[s] < streams[s].size()) ready.push_back(s);
    }
    if (ready.empty()) break;
    const std::size_t pick = ready[static_cast<std::size_t>(
        rng.uniform(0, static_cast<std::int64_t>(ready.size()) - 1))];
    out.push_back(streams[pick][cursor[pick]++]);
  }
  return out;
}

class LiveEquivalenceProperty : public ::testing::TestWithParam<std::uint64_t> {
};

INSTANTIATE_TEST_SUITE_P(Seeds, LiveEquivalenceProperty,
                         ::testing::Range<std::uint64_t>(1, 13));

TEST_P(LiveEquivalenceProperty, StreamingMatchesBatchOnRandomWorkloads) {
  util::Rng rng(GetParam() * 7919);
  const auto events =
      random_workload(rng, static_cast<int>(rng.uniform(2, 8)));
  const Trace trace = dpm::analysis_testing::make_trace(events);
  const Ordering ord = order_events(trace);

  live::LiveAnalysis live;
  for (const Event& e : trace.events) live.add_event(e);

  ASSERT_EQ(live.events(), trace.events.size());
  const auto st = live.stats();
  EXPECT_EQ(st.message_pairs, ord.message_pairs);
  EXPECT_EQ(st.cross_machine_pairs, ord.cross_machine_pairs);
  EXPECT_EQ(st.clock_anomalies, ord.clock_anomalies);
  EXPECT_EQ(st.max_anomaly_us, ord.max_anomaly_us);
  EXPECT_EQ(st.had_cycle, ord.had_cycle);
  EXPECT_FALSE(st.pairing_disorder);
  for (std::size_t i = 0; i < trace.events.size(); ++i) {
    ASSERT_EQ(live.lamport_of(i), ord.events[i].lamport) << "at " << i;
    ASSERT_EQ(live.matched_send_of(i), ord.events[i].matched_send)
        << "at " << i;
  }

  // The critical path is consistent with what was streamed: its cost is
  // the maximum node cost, its steps connect end to end, and its
  // attribution sums to the total.
  const auto cp = live.critical_path();
  if (trace.events.empty()) return;
  ASSERT_TRUE(cp.valid);
  std::int64_t max_cost = 0;
  for (std::size_t i = 0; i < trace.events.size(); ++i) {
    max_cost = std::max(max_cost, live.cost_of(i));
  }
  EXPECT_EQ(cp.total_us, max_cost);
  std::int64_t attributed = 0;
  for (const auto& [proc, us] : cp.proc_us) attributed += us;
  for (const auto& [chan, us] : cp.channel_us) attributed += us;
  EXPECT_EQ(attributed, cp.total_us);
  for (std::size_t s = 1; s < cp.steps.size(); ++s) {
    EXPECT_EQ(cp.steps[s].from, cp.steps[s - 1].to);
  }
  if (!cp.steps.empty()) {
    EXPECT_EQ(cp.steps.back().to, cp.end_event);
  }
}

}  // namespace
}  // namespace dpm::analysis
