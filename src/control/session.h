// Harness-side session management.
//
// install_monitor() puts the measurement system into a World the way a
// site would install it on its machines: the standard programs (filter,
// meterdaemon, controller) are registered and their executable files and
// support files written to every machine. MonitorSession then plays the
// programmer's terminal: it spawns a controller wired to host-visible
// pipes, feeds command lines in, and drains the transcript out.
#pragma once

#include <memory>
#include <string>

#include "kernel/world.h"

namespace dpm::control {

/// Registers the monitor's programs and installs, on every machine:
///   filter        (executable -> "stdfilter")
///   meterdaemon   (executable -> "meterdaemon")
///   controller    (executable -> "controller")
///   descriptions  (standard event record descriptions, Fig 3.2)
///   templates     (default selection rules: keep everything)
void install_monitor(kernel::World& world);

/// Spawns a root meterdaemon on every machine (call once, after
/// install_monitor).
void spawn_meterdaemons(kernel::World& world);

/// Registers an application program under `program` and installs an
/// executable file `path` for it on machine `m`.
void install_app(kernel::World& world, kernel::MachineId m,
                 const std::string& path, const std::string& program);

class MonitorSession {
 public:
  struct Options {
    std::string host;          // machine the user works from (Fig 3.5)
    kernel::Uid uid = 100;     // the programmer's account
    bool grant_accounts = true;  // add the account on every machine
  };

  MonitorSession(kernel::World& world, Options opts);

  /// Writes a command line to the controller's stdin (appends '\n').
  void send_line(const std::string& line);

  /// Everything the controller printed since the last drain.
  std::string drain_output();

  /// send_line + run the world to quiescence + drain_output.
  std::string command(const std::string& line);

  /// Signals EOF on the controller's stdin (^D).
  void close_input();

  kernel::Pid controller_pid() const { return pid_; }
  bool controller_alive() const;
  kernel::MachineId host() const { return host_; }

 private:
  kernel::World& world_;
  kernel::MachineId host_;
  kernel::Pid pid_ = 0;
  std::shared_ptr<kernel::HostPipe> stdin_pipe_;
  std::shared_ptr<kernel::HostPipe> stdout_pipe_;
};

}  // namespace dpm::control
