
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/filter/count_filter.cc" "src/CMakeFiles/dpm_filter.dir/filter/count_filter.cc.o" "gcc" "src/CMakeFiles/dpm_filter.dir/filter/count_filter.cc.o.d"
  "/root/repo/src/filter/descriptions.cc" "src/CMakeFiles/dpm_filter.dir/filter/descriptions.cc.o" "gcc" "src/CMakeFiles/dpm_filter.dir/filter/descriptions.cc.o.d"
  "/root/repo/src/filter/filter_program.cc" "src/CMakeFiles/dpm_filter.dir/filter/filter_program.cc.o" "gcc" "src/CMakeFiles/dpm_filter.dir/filter/filter_program.cc.o.d"
  "/root/repo/src/filter/templates.cc" "src/CMakeFiles/dpm_filter.dir/filter/templates.cc.o" "gcc" "src/CMakeFiles/dpm_filter.dir/filter/templates.cc.o.d"
  "/root/repo/src/filter/trace.cc" "src/CMakeFiles/dpm_filter.dir/filter/trace.cc.o" "gcc" "src/CMakeFiles/dpm_filter.dir/filter/trace.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/dpm_kernel.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/dpm_net.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/dpm_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/dpm_meter.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/dpm_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
