// Controller command edge cases beyond the happy session path.
#include <gtest/gtest.h>

#include "apps/apps.h"
#include "control/session.h"
#include "testing.h"
#include "util/strings.h"

namespace dpm {
namespace {

class ControllerEdgeTest : public ::testing::Test {
 protected:
  ControllerEdgeTest() : world_(dpm::testing::quick_config(71)) {
    machines_ = dpm::testing::add_machines(world_, {"yellow", "red", "green"});
    control::install_monitor(world_);
    apps::install_everywhere(world_);
    control::spawn_meterdaemons(world_);
    session_ = std::make_unique<control::MonitorSession>(
        world_, control::MonitorSession::Options{.host = "yellow", .uid = 100});
    world_.run();
    (void)session_->drain_output();
  }

  kernel::World world_;
  std::vector<kernel::MachineId> machines_;
  std::unique_ptr<control::MonitorSession> session_;
};

TEST_F(ControllerEdgeTest, RemoveprocessSingleProcess) {
  (void)session_->command("filter f1");
  (void)session_->command("newjob j");
  (void)session_->command("addprocess j red hello a");
  (void)session_->command("addprocess j green hello b");
  // A new process cannot be removed (Fig 4.2 forbids new -> killed).
  std::string out = session_->command("removeprocess j hello");
  EXPECT_NE(out.find("is new; not removed"), std::string::npos) << out;
  (void)session_->command("stopjob j");
  out = session_->command("removeprocess j hello");
  EXPECT_NE(out.find("'hello' removed"), std::string::npos) << out;
  // The other one remains listed.
  out = session_->command("jobs j");
  EXPECT_NE(out.find("hello"), std::string::npos) << out;
}

TEST_F(ControllerEdgeTest, SetflagsPropagatesToLiveProcesses) {
  (void)session_->command("filter f1");
  (void)session_->command("newjob j");
  (void)session_->command("addprocess j red pingpong_server 4950 2");
  kernel::Pid pid = 0;
  for (auto& [p, proc] : world_.machine(machines_[1]).procs) {
    if (proc->name == "pingpong_server") pid = p;
  }
  ASSERT_NE(pid, 0);
  kernel::Process* proc = world_.find_process(machines_[1], pid);
  EXPECT_EQ(proc->meter_flags, 0u);  // job had no flags at creation

  (void)session_->command("setflags j send receive");
  EXPECT_EQ(proc->meter_flags, meter::M_SEND | meter::M_RECEIVE);
  // Union semantics reach the kernel too.
  (void)session_->command("setflags j fork");
  EXPECT_EQ(proc->meter_flags, meter::M_SEND | meter::M_RECEIVE | meter::M_FORK);
  // Explicit reset.
  (void)session_->command("setflags j -send");
  EXPECT_EQ(proc->meter_flags, meter::M_RECEIVE | meter::M_FORK);
}

TEST_F(ControllerEdgeTest, FlagsInheritedByProcessesAddedLater) {
  (void)session_->command("filter f1");
  (void)session_->command("newjob j");
  (void)session_->command("setflags j send");
  (void)session_->command("addprocess j red hello late");
  kernel::Pid pid = 0;
  for (auto& [p, proc] : world_.machine(machines_[1]).procs) {
    if (proc->name == "hello") pid = p;
  }
  ASSERT_NE(pid, 0);
  EXPECT_EQ(world_.find_process(machines_[1], pid)->meter_flags, meter::M_SEND);
}

TEST_F(ControllerEdgeTest, StartjobReportsUnstartableStates) {
  (void)session_->command("filter f1");
  (void)session_->command("newjob j");
  (void)session_->command("addprocess j red hello");
  (void)session_->command("startjob j");
  world_.run();
  // Completed (killed) processes cannot be started again.
  std::string out = session_->command("startjob j");
  EXPECT_NE(out.find("cannot be started (killed)"), std::string::npos) << out;
}

TEST_F(ControllerEdgeTest, JobsUnknownNameReported) {
  std::string out = session_->command("jobs ghost");
  EXPECT_NE(out.find("no such job 'ghost'"), std::string::npos) << out;
}

TEST_F(ControllerEdgeTest, SetflagsImmediateAcceptedFromUser) {
  (void)session_->command("filter f1");
  (void)session_->command("newjob j");
  std::string out = session_->command("setflags j send immediate");
  EXPECT_NE(out.find("new job flags = send immediate"), std::string::npos)
      << out;
}

TEST_F(ControllerEdgeTest, ProcessOutputForwardedWhileJobRuns) {
  (void)session_->command("filter f1");
  (void)session_->command("newjob j");
  (void)session_->command("addprocess j red hello from-red");
  std::string out = session_->command("startjob j");
  world_.run();
  out += session_->drain_output();
  // §3.5.2: stdout travels process -> meterdaemon -> controller -> user.
  EXPECT_NE(out.find("[hello] from-red"), std::string::npos) << out;
}

TEST_F(ControllerEdgeTest, GetlogOverwritesDestination) {
  (void)session_->command("filter f1");
  world_.machine(machines_[0]).fs.put_text("dest", "old content", 100);
  (void)session_->command("getlog f1 dest");
  auto text = world_.machine(machines_[0]).fs.read_text("dest");
  ASSERT_TRUE(text.has_value());
  EXPECT_EQ(text->find("old content"), std::string::npos);
}

TEST_F(ControllerEdgeTest, TwoJobsOneFilter) {
  // §3.4: "it is possible to have one filter collect data from several
  // computations."
  (void)session_->command("filter f1");
  (void)session_->command("newjob a");
  (void)session_->command("newjob b");
  (void)session_->command("addprocess a red hello one");
  (void)session_->command("addprocess b green hello two");
  (void)session_->command("setflags a all");
  (void)session_->command("setflags b all");
  (void)session_->command("startjob a");
  (void)session_->command("startjob b");
  world_.run();
  (void)session_->command("getlog f1 t");
  auto text = world_.machine(machines_[0]).fs.read_text("t");
  ASSERT_TRUE(text.has_value());
  // Both machines' termproc records landed in the one log.
  EXPECT_NE(text->find("machine=1"), std::string::npos) << *text;
  EXPECT_NE(text->find("machine=2"), std::string::npos) << *text;
}

}  // namespace
}  // namespace dpm
