#include <gtest/gtest.h>

#include "analysis/structure.h"
#include "analysis_testing.h"

namespace dpm::analysis {
namespace {

using analysis_testing::Stamp;
using meter::MeterAccept;
using meter::MeterConnect;
using meter::MeterSend;

TEST(ConnectionTable, BidirectionalTraffic) {
  auto trace = analysis_testing::make_trace({
      {Stamp{0, 100, 0}, MeterConnect{1, 0, 5, "n1", "n2"}},
      {Stamp{1, 150, 0}, MeterAccept{2, 0, 7, 9, "n2", "n1"}},
      {Stamp{0, 200, 0}, MeterSend{1, 0, 5, 64, ""}},
      {Stamp{0, 300, 0}, MeterSend{1, 0, 5, 64, ""}},
      {Stamp{1, 400, 0}, MeterSend{2, 0, 9, 32, ""}},
  });
  auto table = connection_table(trace);
  ASSERT_EQ(table.size(), 1u);
  const ConnStat& c = table[0];
  EXPECT_EQ(c.a.proc, (ProcKey{0, 1}));
  EXPECT_EQ(c.b.proc, (ProcKey{1, 2}));
  EXPECT_EQ(c.msgs_ab, 2u);
  EXPECT_EQ(c.bytes_ab, 128u);
  EXPECT_EQ(c.msgs_ba, 1u);
  EXPECT_EQ(c.bytes_ba, 32u);
}

TEST(ConnectionTable, MultipleConnections) {
  auto trace = analysis_testing::make_trace({
      {Stamp{0, 100, 0}, MeterConnect{1, 0, 5, "n1", "n2"}},
      {Stamp{1, 150, 0}, MeterAccept{2, 0, 7, 9, "n2", "n1"}},
      {Stamp{0, 200, 0}, MeterConnect{1, 0, 6, "n3", "n4"}},
      {Stamp{2, 250, 0}, MeterAccept{3, 0, 10, 11, "n4", "n3"}},
      {Stamp{0, 300, 0}, MeterSend{1, 0, 6, 10, ""}},
  });
  auto table = connection_table(trace);
  ASSERT_EQ(table.size(), 2u);
  // Traffic lands on the right connection.
  std::uint64_t total_ab = 0;
  for (const auto& c : table) total_ab += c.msgs_ab;
  EXPECT_EQ(total_ab, 1u);
}

TEST(ConnectionTable, UnmatchedConnectionsOmitted) {
  auto trace = analysis_testing::make_trace({
      {Stamp{0, 100, 0}, MeterConnect{1, 0, 5, "n1", "n2"}},  // no accept
      {Stamp{0, 300, 0}, MeterSend{1, 0, 5, 10, ""}},
  });
  EXPECT_TRUE(connection_table(trace).empty());
}

}  // namespace
}  // namespace dpm::analysis
