// ObsSpan — RAII trace span over the executive's (simulated) clock.
//
//   {
//     obs::ObsSpan span(reg, "control.acquire", &reg.histogram("control.acquire_rtt_us"));
//     ... do the round trip ...
//   }  // end event recorded; duration fed to the histogram
//
// Construction records a begin event (parented to the innermost open
// span), destruction records the end event; both land in the registry's
// bounded ring. An optional histogram receives the span's duration in
// simulated microseconds. A null registry makes the span a no-op, so
// instrumented code paths need no conditional at the call site.
#pragma once

#include "obs/registry.h"

namespace dpm::obs {

class ObsSpan {
 public:
  ObsSpan(Registry* reg, std::string name, Histogram* latency_us = nullptr)
      : reg_(reg), latency_(latency_us) {
    if (!reg_) return;
    begin_ = reg_->now();
    id_ = reg_->span_begin(std::move(name));
  }
  ObsSpan(Registry& reg, std::string name, Histogram* latency_us = nullptr)
      : ObsSpan(&reg, std::move(name), latency_us) {}

  ObsSpan(const ObsSpan&) = delete;
  ObsSpan& operator=(const ObsSpan&) = delete;

  ~ObsSpan() {
    if (!reg_) return;
    reg_->span_end(id_);
    if (latency_) latency_->record(util::count_us(reg_->now() - begin_));
  }

  /// Sim-time elapsed since the span began (zero without a registry).
  util::Duration elapsed() const {
    return reg_ ? reg_->now() - begin_ : util::Duration{0};
  }

 private:
  Registry* reg_ = nullptr;
  Histogram* latency_ = nullptr;
  std::uint64_t id_ = 0;
  util::TimePoint begin_{};
};

}  // namespace dpm::obs
