file(REMOVE_RECURSE
  "libdpm_apps.a"
)
